"""Operation characterization library.

AAA needs, for every operation kind, its execution duration on every operator
class that can host it (the paper: "a heuristic which takes into account
durations of computations and inter-component communications").  Synthesis
additionally needs an implementation-cost estimate for FPGA targets.

Durations are stored in *cycles of the hosting operator's clock*; the cost
model converts to nanoseconds with the operator's frequency, so the same
library entry serves a 200 MHz C6201 and a 100 MHz FPGA design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["OperationSpec", "OperationLibrary", "default_library"]

#: Operator classes referenced by the paper's platform.
DSP_CLASS = "c6x_dsp"
FPGA_CLASS = "virtex2"


@dataclass(frozen=True)
class OperationSpec:
    """Characterization of one operation kind.

    ``cycles`` maps operator class → cycles per firing.  A kind absent from
    an operator class cannot be mapped there (e.g. the DAC interface exists
    only on the FPGA).

    ``fpga_resources`` is the synthesis estimate of the bare datapath
    (LUTs/FFs/BRAMs/multipliers) before the generated control structure is
    added — the paper's Table 1 overhead comes from that generated structure,
    which :mod:`repro.fabric.synthesis` adds on top.
    """

    kind: str
    cycles: Mapping[str, int]
    fpga_resources: Mapping[str, int] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("operation kind must be non-empty")
        if not self.cycles:
            raise ValueError(f"kind {self.kind!r} must support at least one operator class")
        for cls, cyc in self.cycles.items():
            if cyc < 0:
                raise ValueError(f"kind {self.kind!r}: negative cycle count on {cls!r}")

    def supports(self, operator_class: str) -> bool:
        return operator_class in self.cycles

    def cycles_on(self, operator_class: str) -> int:
        try:
            return self.cycles[operator_class]
        except KeyError:
            raise KeyError(f"kind {self.kind!r} cannot run on operator class {operator_class!r}") from None


class OperationLibrary:
    """Registry of :class:`OperationSpec` entries."""

    def __init__(self) -> None:
        self._specs: dict[str, OperationSpec] = {}

    def register(self, spec: OperationSpec) -> OperationSpec:
        if spec.kind in self._specs:
            raise ValueError(f"kind {spec.kind!r} already registered")
        self._specs[spec.kind] = spec
        return spec

    def define(
        self,
        kind: str,
        cycles: Mapping[str, int],
        fpga_resources: Optional[Mapping[str, int]] = None,
        description: str = "",
    ) -> OperationSpec:
        return self.register(
            OperationSpec(kind=kind, cycles=dict(cycles), fpga_resources=dict(fpga_resources or {}), description=description)
        )

    def get(self, kind: str) -> OperationSpec:
        try:
            return self._specs[kind]
        except KeyError:
            raise KeyError(f"operation kind {kind!r} not in library") from None

    def __contains__(self, kind: str) -> bool:
        return kind in self._specs

    def kinds(self) -> list[str]:
        return sorted(self._specs)

    def supports(self, kind: str, operator_class: str) -> bool:
        return self.get(kind).supports(operator_class)

    def cycles(self, kind: str, operator_class: str) -> int:
        return self.get(kind).cycles_on(operator_class)


def default_library() -> OperationLibrary:
    """The characterization used by the MC-CDMA case study.

    Cycle counts are engineering estimates consistent with the paper's
    platform (C6201 @ 200 MHz, Virtex-II design @ 50 MHz): the FPGA executes
    the streaming blocks in a few cycles per sample thanks to pipelining,
    while the DSP needs tens of cycles per sample.  FPGA resource vectors are
    sized so the dynamic module lands at the paper's ≈8 % of an XC2V2000.
    """
    lib = OperationLibrary()
    D, F = DSP_CLASS, FPGA_CLASS

    # Sources / sinks (per OFDM-symbol firing; 64 subcarriers, 16-chip codes).
    lib.define("bit_source", {D: 600}, description="MAC-layer bit source on the DSP")
    lib.define("select_source", {D: 80}, description="SNR-driven modulation selector (Select)")
    lib.define("dac_sink", {F: 80}, {"luts": 60, "ffs": 90}, "DAC / RF front-end interface")

    # Static transmitter blocks (FPGA-only in the paper's final mapping,
    # DSP timings provided so adequation can trade mappings off).
    lib.define("channel_coder", {D: 2400, F: 140}, {"luts": 210, "ffs": 180}, "convolutional coder")
    lib.define("interleaver", {D: 1800, F: 130}, {"luts": 150, "ffs": 160, "brams": 1}, "block interleaver")
    lib.define("qpsk_mod", {D: 1500, F: 96}, {"luts": 120, "ffs": 100}, "QPSK symbol mapper")
    lib.define("qam16_mod", {D: 2600, F: 150}, {"luts": 260, "ffs": 190}, "QAM-16 symbol mapper")
    lib.define("spreader", {D: 5200, F: 170}, {"luts": 310, "ffs": 260}, "Walsh-Hadamard spreading")
    lib.define("chip_mapper", {D: 1200, F: 110}, {"luts": 140, "ffs": 150}, "chip-to-subcarrier mapping")
    lib.define("ifft64", {D: 9800, F: 420}, {"luts": 1450, "ffs": 1280, "brams": 3, "mults": 4}, "64-point IFFT")
    lib.define("cyclic_prefix", {D: 900, F: 90}, {"luts": 110, "ffs": 130, "brams": 1}, "cyclic prefix insertion")
    lib.define("framer", {D: 1100, F: 100}, {"luts": 130, "ffs": 140}, "OFDM symbol framing")
    lib.define("interface_in_out", {F: 60}, {"luts": 180, "ffs": 210, "brams": 1}, "SHB bus interface (Interface IN OUT)")

    # Conditional merge: forwards whichever alternative fired (the implicit
    # SynDEx conditioning multiplexer, made explicit in our graphs).
    lib.define("cond_merge", {D: 40, F: 8}, {"luts": 30, "ffs": 20}, "conditional output multiplexer")

    # Generic kinds for synthetic benchmark graphs.
    lib.define("generic_small", {D: 800, F: 90}, {"luts": 100, "ffs": 90})
    lib.define("generic_medium", {D: 3200, F: 260}, {"luts": 420, "ffs": 380, "brams": 1})
    lib.define("generic_large", {D: 12000, F: 900}, {"luts": 1600, "ffs": 1400, "brams": 4, "mults": 4})
    return lib
