"""Whole-graph validation.

Run before adequation; catches the classes of specification error the paper's
flow would reject at the SynDEx level (dangling inputs, cycles, inconsistent
conditioning) plus library coverage (every kind characterized somewhere).
"""

from __future__ import annotations

from typing import Optional

from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary

__all__ = ["GraphValidationError", "validate_graph"]


class GraphValidationError(ValueError):
    """Raised when an algorithm graph is not implementable.

    Collects every problem found so users can fix them in one pass.
    """

    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def validate_graph(graph: AlgorithmGraph, library: Optional[OperationLibrary] = None) -> None:
    """Raise :class:`GraphValidationError` listing every defect of ``graph``."""
    problems: list[str] = []

    if not graph.operations:
        problems.append("graph has no operations")

    # 1. Every input port driven exactly once (connect() enforces <=1; check >=1).
    for op in graph.operations:
        driven = {e.dst_port for e in graph.in_edges(op)}
        for port in op.inputs:
            if port.name not in driven:
                problems.append(f"input {op.name}.{port.name} is not driven")

    # 2. Acyclicity within one iteration.
    if graph.operations and not graph.is_acyclic():
        problems.append("graph contains a dependency cycle (no delay operations declared)")

    # 3. Condition-group consistency.
    for group in graph.condition_groups.values():
        if len(group.cases) < 2:
            problems.append(f"condition group {group.name!r} needs at least two cases")
        if group.selector.name not in graph:
            problems.append(f"selector {group.selector.name!r} of group {group.name!r} not in graph")
        if group.selector.condition is not None:
            problems.append(f"selector of group {group.name!r} must itself be unconditioned")
        for value, ops in group.cases.items():
            for op in ops:
                if op.name not in graph:
                    problems.append(f"conditioned operation {op.name!r} (case {value!r}) not in graph")
                elif graph.operation(op.name) is not op:
                    problems.append(f"conditioned operation {op.name!r} shadows a different graph operation")

    # 3b. Alternatives of one group should have matching interfaces so they
    # can substitute for each other inside one reconfigurable region.
    for group in graph.condition_groups.values():
        signatures = {}
        for value, ops in group.cases.items():
            sig = tuple(
                sorted(
                    (p.name, p.direction.value, p.dtype.name, p.tokens)
                    for op in ops
                    for p in op.ports.values()
                )
            )
            signatures[value] = sig
        distinct = {s for s in signatures.values()}
        if len(distinct) > 1:
            problems.append(
                f"condition group {group.name!r}: cases have differing port interfaces; "
                "alternatives cannot share a reconfigurable region"
            )

    # 4. Library coverage.
    if library is not None:
        for op in graph.operations:
            if op.kind not in library:
                problems.append(f"operation {op.name!r}: kind {op.kind!r} not characterized in library")

    if problems:
        raise GraphValidationError(problems)
