"""Retrofitting dynamic reconfiguration onto a fixed design.

The paper's closing claim: "This methodology can easily be used to
introduce dynamic reconfiguration over already developed fixed design as
well as for IP block integration."  This module is that capability as graph
surgery: take an operation of an existing (fixed) algorithm graph and turn
it into one case of a new condition group, adding alternative
implementations (e.g. third-party IP blocks) with the same interface.

The transformation:

1. adds a selector operation producing the condition value,
2. for every new alternative, clones the target's port interface,
3. fans the target's inputs out to every alternative (producers grow one
   extra output port per alternative),
4. inserts a ``cond_merge`` operation in front of the target's consumers,
5. registers target + alternatives as mutually exclusive cases.

The result validates under :func:`repro.dfg.validate.validate_graph` and
runs through the complete design flow unchanged.
"""

from __future__ import annotations

from typing import Mapping

from repro.dfg.conditions import ConditionGroup
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.operations import Operation
from repro.dfg.types import Direction, WORD32

__all__ = ["RetrofitError", "retrofit_alternatives"]


class RetrofitError(ValueError):
    """The target cannot be made dynamic as requested."""


def retrofit_alternatives(
    graph: AlgorithmGraph,
    target: Operation | str,
    new_alternatives: Mapping[object, str],
    group_name: str,
    base_value: object = "base",
    selector_name: str | None = None,
    selector_kind: str = "select_source",
    merge_kind: str = "cond_merge",
) -> ConditionGroup:
    """Make ``target`` runtime-swappable against ``new_alternatives``.

    ``new_alternatives`` maps condition values to operation *kinds* (the IP
    blocks' library entries); the original target becomes case
    ``base_value``.  Returns the created condition group.
    """
    target_op = graph.operation(target if isinstance(target, str) else target.name)
    if target_op.condition is not None:
        raise RetrofitError(f"{target_op.name!r} is already conditioned")
    if not new_alternatives:
        raise RetrofitError("need at least one new alternative")
    if base_value in new_alternatives:
        raise RetrofitError(f"base value {base_value!r} collides with a new alternative")
    if not target_op.outputs:
        raise RetrofitError(f"{target_op.name!r} has no outputs; nothing to merge")

    # 1. Selector.
    sel_name = selector_name or f"{group_name}_select"
    if sel_name in graph:
        raise RetrofitError(f"selector name {sel_name!r} already used")
    selector = graph.add_operation(sel_name, selector_kind)
    selector.add_output("value", WORD32, 1)

    in_edges = graph.in_edges(target_op)
    out_edges = graph.out_edges(target_op)

    # 2. Clone the interface per alternative.
    alternatives: dict[object, Operation] = {}
    for value, kind in new_alternatives.items():
        alt_name = f"{target_op.name}_{value}"
        if alt_name in graph:
            raise RetrofitError(f"alternative name {alt_name!r} already used")
        alt = graph.add_operation(alt_name, kind)
        for port in target_op.ports.values():
            alt.add_port(port.name, port.direction, port.dtype, port.tokens)
        alternatives[value] = alt

    # 3. Fan inputs out to every alternative.
    for edge in in_edges:
        producer = edge.src
        for value, alt in alternatives.items():
            fan_port = f"{edge.src_port}_{group_name}_{value}"
            if fan_port in producer.ports:
                raise RetrofitError(
                    f"producer {producer.name!r} already has a port {fan_port!r}"
                )
            src_port = producer.port(edge.src_port)
            producer.add_port(fan_port, Direction.OUT, src_port.dtype, src_port.tokens)
            graph.connect(producer, fan_port, alt, edge.dst_port)

    # 4. Merge outputs in front of the original consumers.
    for out_port in target_op.outputs:
        consumers = [e for e in out_edges if e.src_port == out_port.name]
        if not consumers:
            continue
        merge_name = f"{target_op.name}_{out_port.name}_{group_name}_merge"
        merge = graph.add_operation(merge_name, merge_kind)
        merge.add_input(f"from_{base_value}", out_port.dtype, out_port.tokens)
        for value in alternatives:
            merge.add_input(f"from_{value}", out_port.dtype, out_port.tokens)
        for edge in consumers:
            graph.disconnect(edge)
            merge_out = f"o{len(merge.outputs)}"
            merge.add_output(merge_out, out_port.dtype, out_port.tokens)
            graph.connect(merge, merge_out, edge.dst, edge.dst_port)
        graph.connect(target_op, out_port.name, merge, f"from_{base_value}")
        for value, alt in alternatives.items():
            graph.connect(alt, out_port.name, merge, f"from_{value}")

    # 5. The condition group: original block + new IP alternatives.
    group = graph.condition_group(group_name, selector, "value")
    group.add_case(base_value, [target_op])
    for value, alt in alternatives.items():
        group.add_case(value, [alt])
    return group
