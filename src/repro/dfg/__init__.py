"""Algorithm data-flow graphs (the SynDEx *algorithm graph*).

The paper models the application as a data-flow graph "to exhibit the
potential parallelism between operations.  An operation is executed as soon
as its inputs are available, and is infinitely repeated."  This package
provides:

- :mod:`repro.dfg.types` — token data types and ports,
- :mod:`repro.dfg.operations` — operations (vertices),
- :mod:`repro.dfg.graph` — the graph itself plus structural queries,
- :mod:`repro.dfg.conditions` — conditional execution (SynDEx conditioning,
  the ``Select`` input of the MC-CDMA transmitter),
- :mod:`repro.dfg.library` — operation characterization (durations per
  operator class, implementation metadata consumed by synthesis),
- :mod:`repro.dfg.validate` — whole-graph validation,
- :mod:`repro.dfg.generators` — synthetic graph generators for benchmarks.
"""

from repro.dfg.types import BIT, BYTE, CPLX16, DataType, Direction, Port, SAMPLE16, WORD32
from repro.dfg.operations import Operation
from repro.dfg.graph import AlgorithmGraph, Edge
from repro.dfg.conditions import Condition, ConditionGroup
from repro.dfg.library import OperationLibrary, OperationSpec
from repro.dfg.validate import GraphValidationError, validate_graph
from repro.dfg.retrofit import RetrofitError, retrofit_alternatives

__all__ = [
    "BIT",
    "BYTE",
    "CPLX16",
    "SAMPLE16",
    "WORD32",
    "DataType",
    "Direction",
    "Port",
    "Operation",
    "AlgorithmGraph",
    "Edge",
    "Condition",
    "ConditionGroup",
    "OperationLibrary",
    "OperationSpec",
    "GraphValidationError",
    "validate_graph",
    "RetrofitError",
    "retrofit_alternatives",
]
