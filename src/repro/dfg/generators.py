"""Synthetic algorithm-graph generators for scheduler benchmarks.

The paper evaluates on one application; scheduler and prefetch benchmarks
need families of graphs with controlled shape.  All generators are seeded and
deterministic.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.dfg.graph import AlgorithmGraph
from repro.dfg.types import WORD32

__all__ = [
    "chain_graph",
    "fork_join_graph",
    "layered_random_graph",
    "conditioned_chain_graph",
    "multiregion_graph",
]

_GENERIC_KINDS = ("generic_small", "generic_medium", "generic_large")


def _add_generic(graph: AlgorithmGraph, name: str, kind: str, n_in: int, n_out: int, tokens: int = 16):
    op = graph.add_operation(name, kind)
    for i in range(n_in):
        op.add_input(f"i{i}", WORD32, tokens)
    for i in range(n_out):
        op.add_output(f"o{i}", WORD32, tokens)
    return op


def chain_graph(length: int, kind: str = "generic_medium", tokens: int = 16) -> AlgorithmGraph:
    """A linear pipeline of ``length`` operations."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    g = AlgorithmGraph(f"chain{length}")
    prev = _add_generic(g, "n0", kind, 0, 1, tokens)
    for i in range(1, length):
        cur = _add_generic(g, f"n{i}", kind, 1, 1 if i < length - 1 else 0, tokens)
        g.connect(prev, "o0", cur, "i0")
        prev = cur
    return g


def fork_join_graph(width: int, kind: str = "generic_medium", tokens: int = 16) -> AlgorithmGraph:
    """A source fanning out to ``width`` parallel branches joined by a sink."""
    if width < 1:
        raise ValueError("fork width must be >= 1")
    g = AlgorithmGraph(f"forkjoin{width}")
    src = _add_generic(g, "src", "generic_small", 0, width, tokens)
    sink = _add_generic(g, "sink", "generic_small", width, 0, tokens)
    for i in range(width):
        branch = _add_generic(g, f"b{i}", kind, 1, 1, tokens)
        g.connect(src, f"o{i}", branch, "i0")
        g.connect(branch, "o0", sink, f"i{i}")
    return g


def layered_random_graph(
    layers: int,
    width: int,
    seed: int = 0,
    kinds: Sequence[str] = _GENERIC_KINDS,
    density: float = 0.5,
    tokens: int = 16,
) -> AlgorithmGraph:
    """A layered DAG: each node takes inputs from a random subset of the
    previous layer (at least one, to keep every input driven)."""
    if layers < 2 or width < 1:
        raise ValueError("need layers >= 2 and width >= 1")
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = random.Random(seed)
    g = AlgorithmGraph(f"layered{layers}x{width}s{seed}")
    previous: list = []
    for layer in range(layers):
        current = []
        for w in range(width):
            kind = rng.choice(list(kinds))
            if layer == 0:
                op = _add_generic(g, f"l0w{w}", kind, 0, 1, tokens)
                # fan-out ports added lazily below
            else:
                fan_in = [p for p in previous if rng.random() < density]
                if not fan_in:
                    fan_in = [rng.choice(previous)]
                op = g.add_operation(f"l{layer}w{w}", kind)
                for i in range(len(fan_in)):
                    op.add_input(f"i{i}", WORD32, tokens)
                if layer < layers - 1:
                    op.add_output("o0", WORD32, tokens)
                for i, parent in enumerate(fan_in):
                    out_name = f"o{len(g.out_edges(parent))}"
                    if out_name not in parent.ports:
                        parent.add_output(out_name, WORD32, tokens)
                    g.connect(parent, out_name, op, f"i{i}")
            current.append(op)
        previous = current
    return g


def conditioned_chain_graph(
    length: int, alternatives: int, seed: int = 0, tokens: int = 16
) -> AlgorithmGraph:
    """A pipeline whose middle stage is a condition group with
    ``alternatives`` mutually-exclusive implementations — the canonical
    dynamic-reconfiguration workload (generalized MC-CDMA modulation stage)."""
    if length < 3:
        raise ValueError("need length >= 3 to host a conditioned middle stage")
    if alternatives < 2:
        raise ValueError("need at least two alternatives")
    g = AlgorithmGraph(f"condchain{length}x{alternatives}")
    sel = g.add_operation("select", "select_source")
    sel.add_output("value", WORD32, 1)

    prev = _add_generic(g, "stage0", "generic_small", 0, 1, tokens)
    mid = length // 2
    for i in range(1, length):
        if i == mid:
            group = g.condition_group("alt", sel, "value")
            joined = _add_generic(g, f"stage{i + 1}_join", "generic_small", alternatives, 1, tokens)
            for a in range(alternatives):
                alt = _add_generic(g, f"alt{a}", _GENERIC_KINDS[a % len(_GENERIC_KINDS)], 1, 1, tokens)
                # Fan the same upstream value to each alternative.
                out_name = f"o{len(g.out_edges(prev))}"
                if out_name not in prev.ports:
                    prev.add_output(out_name, WORD32, tokens)
                g.connect(prev, out_name, alt, "i0")
                g.connect(alt, "o0", joined, f"i{a}")
                group.add_case(a, [alt])
            prev = joined
        else:
            cur = _add_generic(g, f"stage{i}", "generic_medium", 1, 1 if i < length - 1 else 0, tokens)
            g.connect(prev, "o0", cur, "i0")
            prev = cur
    return g


def multiregion_graph(n_groups: int = 2, alternatives: int = 2, tokens: int = 16) -> AlgorithmGraph:
    """A pipeline of ``n_groups`` conditioned stages — the multi-region workload.

    Each stage is a condition group with ``alternatives`` mutually-exclusive
    implementations fanned between a source/merge pair, generalizing the §7
    dual-region benchmark (two groups, two alternatives each).  Every
    conditioned stage is a candidate for its own dynamic region, so the
    partition/floorplan search space grows with ``n_groups``.
    """
    if n_groups < 1:
        raise ValueError("need at least one condition group")
    if alternatives < 2:
        raise ValueError("need at least two alternatives per group")
    g = AlgorithmGraph(f"multiregion{n_groups}x{alternatives}")
    selectors = []
    for s in range(n_groups):
        sel = g.add_operation(f"sel{s}", "select_source")
        sel.add_output("value", WORD32, 1)
        selectors.append(sel)
    prev = _add_generic(g, "src", "generic_small", 0, alternatives, tokens)
    prev_ports = [f"o{i}" for i in range(alternatives)]
    for s in range(n_groups):
        group = g.condition_group(f"g{s}", selectors[s], "value")
        last = s == n_groups - 1
        merge = _add_generic(
            g, f"merge{s}", "cond_merge", alternatives, 1 if last else alternatives, tokens
        )
        for a in range(alternatives):
            alt = _add_generic(g, f"g{s}_alt{a}", "generic_medium", 1, 1, tokens)
            g.connect(prev, prev_ports[a % len(prev_ports)], alt, "i0")
            g.connect(alt, "o0", merge, f"i{a}")
            group.add_case(a, [alt])
        prev = merge
        prev_ports = [f"o{i}" for i in range(1 if last else alternatives)]
    sink = _add_generic(g, "sink", "generic_small", 1, 0, tokens)
    g.connect(prev, "o0", sink, "i0")
    return g
