"""Conditional execution (SynDEx conditioning).

The MC-CDMA transmitter's ``Select`` input chooses, per OFDM symbol, whether
the *modulation* block runs as QPSK or QAM-16.  SynDEx models this as a
conditioned vertex: a control value selects exactly one alternative subgraph
per iteration.

We model a :class:`ConditionGroup` as a named selector (an operation output
that produces the control value) plus a set of *cases*; each case is a list
of operations that execute only when the selector equals the case's value.
Operations of different cases of the same group are **mutually exclusive** —
precisely the property that lets them share one reconfigurable region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.dfg.operations import Operation

__all__ = ["Condition", "ConditionGroup"]


@dataclass(frozen=True, slots=True)
class Condition:
    """Membership of an operation in one case of a condition group."""

    group: str
    value: Hashable

    def __str__(self) -> str:
        return f"{self.group}=={self.value!r}"


@dataclass
class ConditionGroup:
    """A selector and its mutually-exclusive alternatives."""

    name: str
    selector: Operation
    selector_port: str
    cases: dict[Hashable, list[Operation]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("condition group name must be non-empty")
        self.selector.port(self.selector_port)  # raises if missing

    def add_case(self, value: Hashable, operations: Iterable[Operation]) -> None:
        """Register the operations executed when the selector equals ``value``."""
        if value in self.cases:
            raise ValueError(f"case {value!r} already present in group {self.name!r}")
        ops = list(operations)
        if not ops:
            raise ValueError(f"case {value!r} of group {self.name!r} is empty")
        for op in ops:
            if op.condition is not None:
                raise ValueError(
                    f"operation {op.name!r} already conditioned on {op.condition}; "
                    "operations may belong to at most one condition group"
                )
            op.condition = Condition(self.name, value)
        self.cases[value] = ops

    @property
    def values(self) -> list[Hashable]:
        return list(self.cases)

    @property
    def operations(self) -> list[Operation]:
        return [op for ops in self.cases.values() for op in ops]

    def alternatives_of(self, op: Operation) -> list[Operation]:
        """Operations exclusive with ``op`` (other cases of this group)."""
        if op.condition is None or op.condition.group != self.name:
            raise ValueError(f"{op.name!r} is not conditioned by group {self.name!r}")
        return [
            other
            for value, ops in self.cases.items()
            if value != op.condition.value
            for other in ops
        ]

    def exclusive(self, a: Operation, b: Operation) -> bool:
        """True if ``a`` and ``b`` can never execute in the same iteration."""
        return (
            a.condition is not None
            and b.condition is not None
            and a.condition.group == self.name == b.condition.group
            and a.condition.value != b.condition.value
        )

    def case_of(self, value: Hashable) -> list[Operation]:
        try:
            return self.cases[value]
        except KeyError:
            raise KeyError(f"group {self.name!r} has no case {value!r}") from None
