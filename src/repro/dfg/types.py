"""Token data types and operation ports."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["DataType", "Direction", "Port", "BIT", "BYTE", "WORD32", "SAMPLE16", "CPLX16"]


@dataclass(frozen=True, slots=True)
class DataType:
    """A token type flowing on data-flow edges.

    ``bits`` is the size of one token; media durations and buffer sizes are
    derived from it.
    """

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"data type {self.name!r} must have positive width")

    @property
    def bytes(self) -> int:
        """Size of one token in bytes (rounded up to whole bytes)."""
        return -(-self.bits // 8)

    def __str__(self) -> str:
        return self.name


#: Single bit (uncoded binary data).
BIT = DataType("bit", 1)
#: One octet.
BYTE = DataType("byte", 8)
#: 32-bit word (DSP native).
WORD32 = DataType("word32", 32)
#: 16-bit real sample (fixed point).
SAMPLE16 = DataType("sample16", 16)
#: Complex sample, 16-bit I + 16-bit Q.
CPLX16 = DataType("cplx16", 32)


class Direction(enum.Enum):
    """Port direction, from the operation's point of view."""

    IN = "in"
    OUT = "out"


@dataclass(frozen=True, slots=True)
class Port:
    """A typed operation port producing/consuming ``tokens`` tokens per firing."""

    name: str
    direction: Direction
    dtype: DataType
    tokens: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("port name must be non-empty")
        if self.tokens <= 0:
            raise ValueError(f"port {self.name!r} must carry a positive token count")

    @property
    def size_bits(self) -> int:
        """Data volume per firing in bits."""
        return self.tokens * self.dtype.bits

    @property
    def size_bytes(self) -> int:
        """Data volume per firing in bytes (rounded up)."""
        return -(-self.size_bits // 8)

    def compatible_with(self, other: "Port") -> bool:
        """True if this OUT port can drive ``other`` IN port."""
        return (
            self.direction is Direction.OUT
            and other.direction is Direction.IN
            and self.dtype == other.dtype
            and self.tokens == other.tokens
        )

    def __str__(self) -> str:
        arrow = "->" if self.direction is Direction.OUT else "<-"
        return f"{self.name}{arrow}{self.dtype}[{self.tokens}]"
