"""The algorithm graph: operations connected by typed data-flow edges."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.dfg.conditions import ConditionGroup
from repro.dfg.operations import Operation
from repro.dfg.types import Direction

__all__ = ["Edge", "AlgorithmGraph"]


@dataclass(frozen=True, slots=True)
class Edge:
    """A data dependency: ``src.src_port`` drives ``dst.dst_port``."""

    src: Operation
    src_port: str
    dst: Operation
    dst_port: str

    @property
    def size_bytes(self) -> int:
        """Bytes transferred per iteration over this edge."""
        return self.src.port(self.src_port).size_bytes

    @property
    def size_bits(self) -> int:
        return self.src.port(self.src_port).size_bits

    def __str__(self) -> str:
        return f"{self.src.name}.{self.src_port} -> {self.dst.name}.{self.dst_port}"


class AlgorithmGraph:
    """A data-flow graph of infinitely-repeated operations.

    The graph must be a DAG within one iteration (inter-iteration feedback
    would be modelled with explicit delay operations, which the MC-CDMA
    transmitter does not need).
    """

    def __init__(self, name: str = "algorithm"):
        self.name = name
        self._ops: dict[str, Operation] = {}
        self._edges: list[Edge] = []
        self._groups: dict[str, ConditionGroup] = {}
        self._in: dict[str, list[Edge]] = {}
        self._out: dict[str, list[Edge]] = {}

    def __getstate__(self) -> dict:
        # The adjacency indexes are derived; keep the pickle payload (and
        # therefore every cached artifact embedding a graph) identical to
        # the index-free representation.
        return {
            "name": self.name,
            "_ops": self._ops,
            "_edges": self._edges,
            "_groups": self._groups,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._rebuild_adjacency()

    def _rebuild_adjacency(self) -> None:
        self._in = {}
        self._out = {}
        for e in self._edges:
            self._in.setdefault(e.dst.name, []).append(e)
            self._out.setdefault(e.src.name, []).append(e)

    # -- construction --------------------------------------------------------

    def add(self, op: Operation) -> Operation:
        if op.name in self._ops:
            raise ValueError(f"duplicate operation name {op.name!r}")
        self._ops[op.name] = op
        return op

    def add_operation(self, name: str, kind: str, **params) -> Operation:
        """Create, register and return a fresh operation."""
        return self.add(Operation(name=name, kind=kind, params=params))

    def connect(self, src: Operation | str, src_port: str, dst: Operation | str, dst_port: str) -> Edge:
        """Add a data-flow edge; validates port existence and compatibility."""
        src_op = self._resolve(src)
        dst_op = self._resolve(dst)
        sp = src_op.port(src_port)
        dp = dst_op.port(dst_port)
        if sp.direction is not Direction.OUT:
            raise ValueError(f"{src_op.name}.{src_port} is not an output port")
        if dp.direction is not Direction.IN:
            raise ValueError(f"{dst_op.name}.{dst_port} is not an input port")
        if not sp.compatible_with(dp):
            raise ValueError(
                f"incompatible edge {src_op.name}.{src_port} ({sp.dtype}[{sp.tokens}]) -> "
                f"{dst_op.name}.{dst_port} ({dp.dtype}[{dp.tokens}])"
            )
        for e in self._in.get(dst_op.name, ()):
            if e.dst_port == dst_port:
                raise ValueError(f"input {dst_op.name}.{dst_port} already driven by {e.src.name}.{e.src_port}")
        edge = Edge(src_op, src_port, dst_op, dst_port)
        self._edges.append(edge)
        self._in.setdefault(dst_op.name, []).append(edge)
        self._out.setdefault(src_op.name, []).append(edge)
        return edge

    def disconnect(self, edge: Edge) -> None:
        """Remove a data-flow edge (used by graph-surgery utilities)."""
        try:
            self._edges.remove(edge)
        except ValueError:
            raise KeyError(f"edge {edge} not in graph {self.name!r}") from None
        self._in[edge.dst.name].remove(edge)
        self._out[edge.src.name].remove(edge)

    def condition_group(
        self, name: str, selector: Operation | str, selector_port: str
    ) -> ConditionGroup:
        """Declare a condition group driven by ``selector.selector_port``."""
        if name in self._groups:
            raise ValueError(f"duplicate condition group {name!r}")
        sel = self._resolve(selector)
        group = ConditionGroup(name=name, selector=sel, selector_port=selector_port)
        self._groups[name] = group
        return group

    def _resolve(self, op: Operation | str) -> Operation:
        if isinstance(op, Operation):
            # Resolve to the graph's own instance: cached/pickled artifacts
            # (schedules crossing a worker pipe or the disk cache) carry equal
            # copies, and edge scans below compare by identity.
            resident = self._ops.get(op.name)
            if resident != op:
                raise KeyError(f"operation {op.name!r} is not part of graph {self.name!r}")
            return resident
        try:
            return self._ops[op]
        except KeyError:
            raise KeyError(f"graph {self.name!r} has no operation {op!r}") from None

    # -- queries ---------------------------------------------------------------

    @property
    def operations(self) -> list[Operation]:
        return list(self._ops.values())

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges)

    @property
    def condition_groups(self) -> dict[str, ConditionGroup]:
        return dict(self._groups)

    def operation(self, name: str) -> Operation:
        return self._resolve(name)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def in_edges(self, op: Operation | str) -> list[Edge]:
        # Name-keyed adjacency: O(fan-in) instead of an O(E) identity scan,
        # and indifferent to whether the caller holds a pickled copy.
        target = self._resolve(op)
        return list(self._in.get(target.name, ()))

    def out_edges(self, op: Operation | str) -> list[Edge]:
        source = self._resolve(op)
        return list(self._out.get(source.name, ()))

    def predecessors(self, op: Operation | str) -> list[Operation]:
        seen: dict[str, Operation] = {}
        for e in self.in_edges(op):
            seen.setdefault(e.src.name, e.src)
        return list(seen.values())

    def successors(self, op: Operation | str) -> list[Operation]:
        seen: dict[str, Operation] = {}
        for e in self.out_edges(op):
            seen.setdefault(e.dst.name, e.dst)
        return list(seen.values())

    def sources(self) -> list[Operation]:
        return [op for op in self._ops.values() if not self.in_edges(op)]

    def sinks(self) -> list[Operation]:
        return [op for op in self._ops.values() if not self.out_edges(op)]

    # -- structure ---------------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """Lossless export for graph algorithms."""
        g = nx.MultiDiGraph(name=self.name)
        for op in self._ops.values():
            g.add_node(op.name, operation=op)
        for e in self._edges:
            g.add_edge(e.src.name, e.dst.name, edge=e, bytes=e.size_bytes)
        return g

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.to_networkx())

    def topological_order(self) -> list[Operation]:
        """Operations in dependency order (stable across runs)."""
        g = self.to_networkx()
        try:
            order = list(nx.lexicographical_topological_sort(g))
        except nx.NetworkXUnfeasible:
            raise ValueError(f"graph {self.name!r} contains a dependency cycle") from None
        return [self._ops[n] for n in order]

    def exclusive(self, a: Operation, b: Operation) -> bool:
        """True if ``a`` and ``b`` never execute in the same iteration.

        O(1): two operations are exclusive exactly when both carry a
        condition from the same (registered) group with different case
        values — the per-group scan the schedulers used to pay on every
        timeline element now reduces to two attribute reads.
        """
        ca, cb = a.condition, b.condition
        return (
            ca is not None
            and cb is not None
            and ca.group == cb.group
            and ca.value != cb.value
            and ca.group in self._groups
        )

    def critical_path_length(self, duration_of) -> int:
        """Longest path with node weights ``duration_of(op)`` (ignores comms)."""
        longest: dict[str, int] = {}
        for op in self.topological_order():
            base = max((longest[p.name] for p in self.predecessors(op)), default=0)
            longest[op.name] = base + duration_of(op)
        return max(longest.values(), default=0)

    def summary(self) -> str:
        lines = [f"AlgorithmGraph {self.name!r}: {len(self._ops)} operations, {len(self._edges)} edges"]
        for op in self.topological_order():
            cond = f"  [if {op.condition}]" if op.condition else ""
            lines.append(f"  {op.name} ({op.kind}){cond}")
        for g in self._groups.values():
            lines.append(f"  group {g.name}: cases {sorted(map(repr, g.cases))}")
        return "\n".join(lines)
