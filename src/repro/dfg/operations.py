"""Operations — vertices of the algorithm graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from repro.dfg.types import DataType, Direction, Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.dfg.conditions import Condition

__all__ = ["Operation"]


@dataclass
class Operation:
    """A data-flow operation.

    An operation fires when all its input tokens are available, consumes them,
    runs for a library-defined duration on the operator it was mapped to, and
    produces its output tokens.  It repeats infinitely (the executive wraps
    the whole graph in an endless loop).

    ``kind`` names an entry of the :class:`~repro.dfg.library.OperationLibrary`
    (e.g. ``"qpsk_mod"``); ``params`` carries instance parameters (e.g. FFT
    size).  ``condition`` is set when the operation belongs to a conditioned
    alternative (see :mod:`repro.dfg.conditions`).
    """

    name: str
    kind: str
    ports: dict[str, Port] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)
    condition: Optional["Condition"] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be non-empty")
        if not self.kind:
            raise ValueError(f"operation {self.name!r} must name a library kind")

    # -- port management -----------------------------------------------------

    def add_port(self, name: str, direction: Direction, dtype: DataType, tokens: int = 1) -> Port:
        """Declare a port; returns it for convenience."""
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r} on operation {self.name!r}")
        port = Port(name, direction, dtype, tokens)
        self.ports[name] = port
        return port

    def add_input(self, name: str, dtype: DataType, tokens: int = 1) -> Port:
        return self.add_port(name, Direction.IN, dtype, tokens)

    def add_output(self, name: str, dtype: DataType, tokens: int = 1) -> Port:
        return self.add_port(name, Direction.OUT, dtype, tokens)

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise KeyError(f"operation {self.name!r} has no port {name!r}") from None

    @property
    def inputs(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is Direction.IN]

    @property
    def outputs(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is Direction.OUT]

    @property
    def is_source(self) -> bool:
        """No data inputs — e.g. a sensor or the DSP bit source."""
        return not self.inputs

    @property
    def is_sink(self) -> bool:
        """No data outputs — e.g. the DAC / antenna interface."""
        return not self.outputs

    @property
    def is_conditioned(self) -> bool:
        return self.condition is not None

    def input_bytes(self) -> int:
        """Total bytes consumed per firing."""
        return sum(p.size_bytes for p in self.inputs)

    def output_bytes(self) -> int:
        """Total bytes produced per firing."""
        return sum(p.size_bytes for p in self.outputs)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.name == other.name

    def __repr__(self) -> str:
        cond = f" if {self.condition}" if self.condition else ""
        return f"Operation({self.name}:{self.kind}{cond})"
