"""VHDL testbench generation for generated modules.

For every generated module the flow can emit a self-checking testbench:
clock/reset generation, a stimulus process driving each data-input port with
a deterministic pattern through the strobe/ack handshake, and a watchdog
that fails the simulation if the module never produces output strobes.

These testbenches are what a user would hand to a VHDL simulator; in this
reproduction they are validated by the structural checker and by the port
cross-reference tests.
"""

from __future__ import annotations

from repro.codegen.checker import entity_ports
from repro.codegen.vhdl import VhdlWriter, vhdl_identifier

__all__ = ["generate_testbench", "generate_all_testbenches"]


def generate_testbench(module_vhdl: str, entity_name: str, clock_ns: int = 20) -> str:
    """A testbench instantiating ``entity_name`` found in ``module_vhdl``."""
    ports = entity_ports(module_vhdl, entity_name)
    if not ports:
        raise ValueError(f"entity {entity_name!r} has no ports to drive")
    tb_name = f"tb_{entity_name}"
    w = VhdlWriter()
    w.header(f"{tb_name} — self-checking testbench for {entity_name}")
    w.entity(tb_name, [])
    w.begin_architecture("bench", tb_name)

    # One signal per port of the DUT.
    data_ins = []
    data_outs = []
    for name, direction in ports:
        if name in ("clk", "rst"):
            continue
        if direction == "in":
            data_ins.append(name)
        else:
            data_outs.append(name)
        w.declare_signal(f"s_{name}", "std_logic_vector(31 downto 0)" if not name.endswith(("_stb", "_ack")) and name not in ("in_reconf", "reconf_req") else "std_logic", None)
    w.declare_signal("clk", "std_logic", "'0'")
    w.declare_signal("rst", "std_logic", "'1'")
    w.declare_signal("cycle", "unsigned(31 downto 0)", "(others => '0')")
    w.begin_body()

    w.comment("clock and reset")
    w.line(f"clk <= not clk after {clock_ns // 2} ns;")
    w.line("rst <= '0' after 100 ns;")
    w.blank()

    w.comment("device under test")
    w.line(f"dut : entity work.{vhdl_identifier(entity_name)}")
    w.push()
    assoc = ["clk => clk", "rst => rst"]
    for name, _direction in ports:
        if name in ("clk", "rst"):
            continue
        assoc.append(f"{vhdl_identifier(name)} => s_{vhdl_identifier(name)}")
    w.line("port map (" + ", ".join(assoc) + ");")
    w.pop()
    w.blank()

    w.comment("stimulus: drive every data input with a counter pattern")
    w.begin_process("stim", ["clk"])
    w.line("if rising_edge(clk) then")
    w.push()
    w.line("cycle <= cycle + 1;")
    for name in data_ins:
        sig = f"s_{vhdl_identifier(name)}"
        if name.endswith("_ack"):
            w.line(f"{sig} <= '1';")
        elif name.endswith("_stb"):
            w.line(f"{sig} <= cycle(0);")
        elif name == "in_reconf":
            w.line(f"{sig} <= '0';")
        elif name == "select_val":
            w.line(f"{sig} <= std_logic_vector(cycle(7 downto 0));")
        else:
            w.line(f"{sig} <= std_logic_vector(cycle);")
    w.pop()
    w.line("end if;")
    w.end_process("stim")

    w.comment("watchdog: the module must strobe an output within 100000 cycles")
    w.begin_process("watchdog", ["clk"])
    w.line("if rising_edge(clk) then")
    w.push()
    w.line("if cycle = to_unsigned(100000, 32) then")
    w.push()
    strobes = [n for n in data_outs if n.endswith("_stb")]
    if strobes:
        cond = " and ".join(f"s_{vhdl_identifier(n)} = '0'" for n in strobes)
        w.line(f"assert not ({cond})")
        w.push()
        w.line('report "module produced no output strobe" severity failure;')
        w.pop()
    else:
        w.line('assert false report "watchdog expired" severity note;')
    w.pop()
    w.line("end if;")
    w.pop()
    w.line("end if;")
    w.end_process("watchdog")

    w.end_architecture("bench")
    return w.render()


def generate_all_testbenches(files: dict[str, str]) -> dict[str, str]:
    """Testbenches for every module file (skips ``top``/``bus_macro``)."""
    out: dict[str, str] = {}
    for fname, text in files.items():
        stem = fname[:-4] if fname.endswith(".vhd") else fname
        if stem in ("top", "bus_macro"):
            continue
        # The entity name matches the stem up to case (generator guarantees it).
        import re

        m = re.search(r"entity\s+([a-zA-Z][a-zA-Z0-9_]*)\s+is", text)
        if not m:
            continue
        entity = m.group(1)
        out[f"tb_{stem}.vhd"] = generate_testbench(text, entity)
    return out
