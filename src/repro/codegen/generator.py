"""Executive → VHDL translation.

Generates, per FPGA operator of the schedule:

- for the **static part**: one module implementing every operation mapped to
  it — a computation sequencer FSM (one state per operation), a
  communication sequencer (handshakes per cross-operator edge), and buffer
  phase-control signals;
- for each **dynamic operator**: one module *per conditioned variant*, all
  with the identical region pinout (so any variant drops into the region),
  plus the ``In_Reconf`` lock-up input and the reconfiguration-request
  output of the paper's Fig. 4;
- a ``bus_macro`` entity (the eight 3-state buffers) and a top level that
  stitches static part, region stubs and bus macros together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aaa.schedule import Schedule, ScheduledOp
from repro.arch.operator import Operator, OperatorKind
from repro.codegen.vhdl import Port, VhdlWriter, vector, vhdl_identifier
from repro.dfg.graph import AlgorithmGraph, Edge

__all__ = ["GeneratedDesign", "generate_operator_vhdl", "generate_design"]

#: Widest on-chip data path of the generated design (the bus-macro side).
MAX_DATA_WIDTH = 32


def _edge_width(edge: Edge) -> int:
    """Port width for an edge's streaming interface."""
    return min(MAX_DATA_WIDTH, edge.size_bits)


def _edge_port_name(edge: Edge, incoming: bool) -> str:
    base = f"{edge.src.name}_{edge.src_port}" if incoming else f"{edge.src.name}_{edge.src_port}"
    return vhdl_identifier((("din_" if incoming else "dout_") + base))


@dataclass
class GeneratedDesign:
    """All generated artefacts plus synthesis metadata."""

    files: dict[str, str] = field(default_factory=dict)
    #: module name -> names of the operations it implements
    module_ops: dict[str, list[str]] = field(default_factory=dict)
    #: dynamic variant module -> region name
    variant_regions: dict[str, str] = field(default_factory=dict)
    #: module name -> [(port name, width, direction)]
    module_ports: dict[str, list[tuple[str, int, str]]] = field(default_factory=dict)
    #: module name -> total inter-op buffer bytes inside the module
    module_buffer_bytes: dict[str, int] = field(default_factory=dict)

    def file_names(self) -> list[str]:
        return sorted(self.files)


def _cycles(duration_ns: int, clock_mhz: float) -> int:
    return max(1, round(duration_ns * clock_mhz / 1000.0))


def _operator_io(
    graph: AlgorithmGraph, schedule: Schedule, operator: Operator
) -> tuple[list[Edge], list[Edge]]:
    """Cross-operator edges entering / leaving ``operator``."""
    mapping = schedule.mapping()
    ins: list[Edge] = []
    outs: list[Edge] = []
    for edge in graph.edges:
        src_here = mapping[edge.src.name] == operator.name
        dst_here = mapping[edge.dst.name] == operator.name
        if dst_here and not src_here:
            ins.append(edge)
        elif src_here and not dst_here:
            outs.append(edge)
    return ins, outs


def generate_operator_vhdl(
    graph: AlgorithmGraph,
    schedule: Schedule,
    operator: Operator,
    ops: Optional[list[ScheduledOp]] = None,
    module_name: Optional[str] = None,
) -> str:
    """VHDL for one FPGA module (static part, or one dynamic variant when
    ``ops`` restricts to a single conditioned alternative)."""
    scheduled = ops if ops is not None else schedule.of_operator(operator)
    if not scheduled:
        raise ValueError(f"operator {operator.name!r} has no scheduled operations")
    name = module_name or f"static_{operator.name}"
    reconfigurable = operator.kind is OperatorKind.FPGA_DYNAMIC
    op_names = {s.op.name for s in scheduled}

    ins, outs = _operator_io(graph, schedule, operator)
    ins = [e for e in ins if e.dst.name in op_names]
    outs = [e for e in outs if e.src.name in op_names]

    ports: list[Port] = [
        Port("clk", "in", "std_logic"),
        Port("rst", "in", "std_logic"),
    ]
    for e in ins:
        ports.append(Port(_edge_port_name(e, True), "in", vector(_edge_width(e))))
        ports.append(Port(_edge_port_name(e, True) + "_stb", "in", "std_logic"))
        ports.append(Port(_edge_port_name(e, True) + "_ack", "out", "std_logic"))
    for e in outs:
        ports.append(Port(_edge_port_name(e, False), "out", vector(_edge_width(e))))
        ports.append(Port(_edge_port_name(e, False) + "_stb", "out", "std_logic"))
        ports.append(Port(_edge_port_name(e, False) + "_ack", "in", "std_logic"))
    if reconfigurable:
        ports.append(Port("in_reconf", "in", "std_logic"))
        ports.append(Port("reconf_req", "out", "std_logic"))
        ports.append(Port("select_val", "in", vector(8)))

    w = VhdlWriter()
    kindtag = "dynamic variant" if reconfigurable else "static part"
    w.header(f"{name} — {kindtag} of operator {operator.name} ({operator.clock_mhz:g} MHz)")
    w.entity(name, ports)

    arch = "rtl"
    w.begin_architecture(arch, name)
    states = ["st_idle"] + [f"st_{s.op.name}" for s in scheduled] + ["st_done"]
    w.declare_state_type("comp_state_t", states)
    w.declare_signal("comp_state", "comp_state_t", "st_idle")
    w.declare_signal("cycle_count", "unsigned(31 downto 0)", "(others => '0')")
    for e in ins:
        w.declare_signal(f"buf_{_edge_port_name(e, True)}", vector(_edge_width(e)))
        w.declare_signal(f"buf_{_edge_port_name(e, True)}_full", "std_logic", "'0'")
    for e in outs:
        w.declare_signal(f"buf_{_edge_port_name(e, False)}", vector(_edge_width(e)))
        w.declare_signal(f"buf_{_edge_port_name(e, False)}_full", "std_logic", "'0'")
    w.declare_signal("comm_phase_write", "std_logic", "'0'")
    w.begin_body()

    # --- computation sequencer -------------------------------------------------
    w.comment("computation sequencer: one state per operation, duration counters")
    w.begin_process("comp_seq", ["clk"])
    w.line("if rising_edge(clk) then")
    w.push()
    w.line("if rst = '1' then")
    w.push()
    w.line("comp_state <= st_idle;")
    w.line("cycle_count <= (others => '0');")
    w.pop()
    w.line("else")
    w.push()
    w.line("case comp_state is")
    w.push()
    w.line("when st_idle =>")
    w.push()
    if reconfigurable:
        w.comment("lock up while the region is being reconfigured")
        w.line("if in_reconf = '0' then")
        w.push()
        w.line(f"comp_state <= st_{vhdl_identifier(scheduled[0].op.name)};")
        w.pop()
        w.line("end if;")
    else:
        w.line(f"comp_state <= st_{vhdl_identifier(scheduled[0].op.name)};")
    w.pop()
    for i, s in enumerate(scheduled):
        nxt = "st_done" if i == len(scheduled) - 1 else f"st_{scheduled[i + 1].op.name}"
        cycles = _cycles(s.duration, operator.clock_mhz)
        w.line(f"when st_{vhdl_identifier(s.op.name)} =>")
        w.push()
        w.comment(f"{s.op.kind}: {cycles} cycles")
        w.line(f"if cycle_count = to_unsigned({cycles - 1}, 32) then")
        w.push()
        w.line("cycle_count <= (others => '0');")
        w.line(f"comp_state <= {vhdl_identifier(nxt)};")
        w.pop()
        w.line("else")
        w.push()
        w.line("cycle_count <= cycle_count + 1;")
        w.pop()
        w.line("end if;")
        w.pop()
    w.line("when st_done =>")
    w.push()
    w.line("comp_state <= st_idle;")
    w.pop()
    w.pop()
    w.line("end case;")
    w.pop()
    w.line("end if;")
    w.pop()
    w.line("end if;")
    w.end_process("comp_seq")

    # --- communication sequencer -------------------------------------------------
    w.comment("communication sequencer: buffer hand-off with read/write phases")
    w.begin_process("comm_seq", ["clk"])
    w.line("if rising_edge(clk) then")
    w.push()
    for e in ins:
        pname = _edge_port_name(e, True)
        w.line(f"if {pname}_stb = '1' and buf_{pname}_full = '0' then")
        w.push()
        w.line(f"buf_{pname} <= {pname};")
        w.line(f"buf_{pname}_full <= '1';")
        w.pop()
        w.line("end if;")
    for e in outs:
        pname = _edge_port_name(e, False)
        w.line(f"if buf_{pname}_full = '1' and {pname}_ack = '1' then")
        w.push()
        w.line(f"buf_{pname}_full <= '0';")
        w.pop()
        w.line("end if;")
    w.line("comm_phase_write <= not comm_phase_write;")
    w.pop()
    w.line("end if;")
    w.end_process("comm_seq")

    for e in ins:
        pname = _edge_port_name(e, True)
        w.line(f"{pname}_ack <= not buf_{pname}_full;")
    for e in outs:
        pname = _edge_port_name(e, False)
        w.line(f"{pname} <= buf_{pname};")
        w.line(f"{pname}_stb <= buf_{pname}_full;")
    if reconfigurable:
        w.comment("reconfiguration request: raised when the selected module differs")
        w.line("reconf_req <= '1' when select_val /= x\"00\" and comp_state = st_idle else '0';")
    w.end_architecture(arch)
    return w.render()


def _bus_macro_vhdl() -> str:
    w = VhdlWriter()
    w.header("bus_macro — fixed routing bridge (eight 3-state buffers)")
    w.entity(
        "bus_macro",
        [
            Port("lhs", "in", vector(4)),
            Port("rhs", "out", vector(4)),
            Port("enable", "in", "std_logic"),
        ],
    )
    w.begin_architecture("structural", "bus_macro")
    w.begin_body()
    w.comment("four data bits, one TBUF pair per bit, straddling the boundary")
    w.line("rhs <= lhs when enable = '1' else (others => 'Z');")
    w.end_architecture("structural")
    return w.render()


def generate_design(
    graph: AlgorithmGraph,
    schedule: Schedule,
    architecture,
) -> GeneratedDesign:
    """Generate all VHDL files for the FPGA operators of a schedule."""
    design = GeneratedDesign()
    mapping = schedule.mapping()
    fpga_static = [
        op for op in architecture.operators
        if op.kind is OperatorKind.FPGA_STATIC and schedule.of_operator(op)
    ]
    fpga_dynamic = [
        op for op in architecture.operators
        if op.kind is OperatorKind.FPGA_DYNAMIC and schedule.of_operator(op)
    ]

    for operator in fpga_static:
        module = f"static_{operator.name}"
        text = generate_operator_vhdl(graph, schedule, operator, module_name=module)
        design.files[f"{vhdl_identifier(module).lower()}.vhd"] = text
        scheduled = schedule.of_operator(operator)
        design.module_ops[module] = [s.op.name for s in scheduled]
        design.module_ports[module] = _port_meta(graph, schedule, operator, {s.op.name for s in scheduled})
        design.module_buffer_bytes[module] = sum(
            e.size_bytes for e in graph.edges
            if mapping[e.src.name] == operator.name and mapping[e.dst.name] == operator.name
        )

    for operator in fpga_dynamic:
        for s in schedule.of_operator(operator):
            module = f"dyn_{operator.region}_{s.op.name}"
            text = generate_operator_vhdl(
                graph, schedule, operator, ops=[s], module_name=module
            )
            design.files[f"{vhdl_identifier(module).lower()}.vhd"] = text
            design.module_ops[module] = [s.op.name]
            design.variant_regions[module] = operator.region or operator.name
            design.module_ports[module] = _port_meta(graph, schedule, operator, {s.op.name})
            design.module_buffer_bytes[module] = 0

    design.files["bus_macro.vhd"] = _bus_macro_vhdl()
    design.files["top.vhd"] = _top_vhdl(design, fpga_static, fpga_dynamic)
    return design


def _port_meta(graph, schedule, operator, op_names) -> list[tuple[str, int, str]]:
    ins, outs = _operator_io(graph, schedule, operator)
    meta: list[tuple[str, int, str]] = []
    for e in ins:
        if e.dst.name in op_names:
            meta.append((_edge_port_name(e, True), _edge_width(e), "in"))
    for e in outs:
        if e.src.name in op_names:
            meta.append((_edge_port_name(e, False), _edge_width(e), "out"))
    return meta


def _top_vhdl(design: GeneratedDesign, fpga_static, fpga_dynamic) -> str:
    w = VhdlWriter()
    w.header("top — static part, reconfigurable regions and bus macros")
    w.entity("top", [Port("clk", "in", "std_logic"), Port("rst", "in", "std_logic")])
    w.begin_architecture("structural", "top")
    w.declare_signal("bm_enable", "std_logic", "'1'")
    n_macros = max(1, len(fpga_dynamic))
    for i in range(n_macros):
        w.declare_signal(f"bm{i}_l", vector(4))
        w.declare_signal(f"bm{i}_r", vector(4))
    w.begin_body()
    w.comment("reconfigurable region contents are loaded at run time; the")
    w.comment("default variant is instantiated for the initial full bitstream")
    for i in range(n_macros):
        w.line(f"bm{i} : entity work.bus_macro")
        w.push()
        w.line(f"port map (lhs => bm{i}_l, rhs => bm{i}_r, enable => bm_enable);")
        w.pop()
    w.end_architecture("structural")
    return w.render()
