"""VHDL code generation — the automatic design generation step.

"The translation generates the VHDL code, both for the static and dynamic
parts of a FPGA.  The final FPGA design is based on several dedicated
processes to control: communication sequencings, computation sequencings,
operator behaviour, activation of reading and writing phases of buffers."

- :mod:`repro.codegen.vhdl` — VHDL text construction helpers,
- :mod:`repro.codegen.generator` — executive macro-code → VHDL modules
  (static part, one module per dynamic variant, bus macros),
- :mod:`repro.codegen.constraints` — UCF-style placement constraints file,
- :mod:`repro.codegen.checker` — a small VHDL lexer and structural checker
  standing in for a VHDL front-end in the tests.
"""

from repro.codegen.vhdl import VhdlWriter, vhdl_identifier
from repro.codegen.generator import GeneratedDesign, generate_design, generate_operator_vhdl
from repro.codegen.constraints import generate_ucf
from repro.codegen.checker import VhdlCheckError, check_vhdl, lex_vhdl

__all__ = [
    "VhdlWriter",
    "vhdl_identifier",
    "GeneratedDesign",
    "generate_design",
    "generate_operator_vhdl",
    "generate_ucf",
    "VhdlCheckError",
    "check_vhdl",
    "lex_vhdl",
]
