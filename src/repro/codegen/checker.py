"""A small VHDL lexer and structural checker.

Stands in for a VHDL front-end so tests can assert that generated code is
structurally sound: balanced design units, matched ``process``/``end
process``, balanced parentheses, legal port directions, and that every
instantiated component entity exists in the design set.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "VhdlCheckError", "lex_vhdl", "check_vhdl", "entity_ports"]


class VhdlCheckError(ValueError):
    """Structural problem in generated VHDL; carries all problems found."""

    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "ident" | "number" | "string" | "punct"
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>--[^\n]*)
  | (?P<string>"(?:[^"]|"")*")
  | (?P<char>'(?:[^']|'')'?)
  | (?P<number>\d[\d_.#a-fA-F]*)
  | (?P<ident>[a-zA-Z][a-zA-Z0-9_]*)
  | (?P<punct><=|=>|:=|/=|>=|[();:,.&'<>=+\-*/|])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


def lex_vhdl(text: str) -> list[Token]:
    """Tokenize; raises on characters VHDL does not allow."""
    tokens: list[Token] = []
    line = 1
    problems: list[str] = []
    for m in _TOKEN_RE.finditer(text):
        kind = m.lastgroup
        value = m.group()
        line += value.count("\n")
        if kind in ("comment", "ws"):
            continue
        if kind == "bad":
            problems.append(f"line {line}: illegal character {value!r}")
            continue
        if kind == "char":
            kind = "string"
        tokens.append(Token(kind=kind or "punct", text=value, line=line))
    if problems:
        raise VhdlCheckError(problems)
    return tokens


def _lowered(tokens: list[Token]) -> list[str]:
    return [t.text.lower() if t.kind == "ident" else t.text for t in tokens]


def entity_ports(text: str, entity: str) -> list[tuple[str, str]]:
    """Extract ``(port_name, direction)`` pairs of ``entity`` from VHDL text."""
    tokens = lex_vhdl(text)
    words = _lowered(tokens)
    try:
        start = next(
            i for i in range(len(words) - 2)
            if words[i] == "entity" and words[i + 1] == entity.lower() and words[i + 2] == "is"
        )
    except StopIteration:
        raise VhdlCheckError([f"entity {entity!r} not found"]) from None
    # Find "port (" after the entity keyword.
    i = start
    while i < len(words) and words[i] != "port":
        i += 1
    if i >= len(words):
        return []
    i += 1  # at "("
    depth = 0
    ports: list[tuple[str, str]] = []
    pending: list[str] = []
    j = i
    while j < len(words):
        w = words[j]
        if w == "(":
            depth += 1
        elif w == ")":
            depth -= 1
            if depth == 0:
                break
        elif depth == 1:
            if w == ":":
                direction = words[j + 1] if j + 1 < len(words) else "?"
                for name in pending:
                    ports.append((name, direction))
                pending = []
            elif w in (";", ","):
                pass
            elif tokens[j].kind == "ident" and (not ports or words[j - 1] in ("(", ";", ",")):
                pending.append(w)
        j += 1
    return ports


def check_vhdl(files: dict[str, str]) -> None:
    """Check a set of VHDL files as one design; raises with all problems."""
    problems: list[str] = []
    entities: set[str] = set()
    components_used: list[tuple[str, str]] = []  # (file, component entity)

    for fname, text in files.items():
        try:
            tokens = lex_vhdl(text)
        except VhdlCheckError as err:
            problems.extend(f"{fname}: {p}" for p in err.problems)
            continue
        words = _lowered(tokens)

        # Parenthesis balance.
        depth = 0
        for t in tokens:
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth < 0:
                    problems.append(f"{fname}: line {t.line}: unbalanced ')'")
                    depth = 0
        if depth > 0:
            problems.append(f"{fname}: {depth} unclosed '('")

        # Design-unit pairing.
        for unit in ("entity", "architecture", "process"):
            opens = 0
            closes = 0
            for i, w in enumerate(words):
                if w == unit and (i == 0 or words[i - 1] != "end"):
                    # "process" appears both as statement and in "end process".
                    if unit == "entity" and i + 2 < len(words) and words[i + 2] != "is":
                        continue  # entity reference like "entity work.foo"
                    opens += 1
                if w == unit and i > 0 and words[i - 1] == "end":
                    closes += 1
            if opens != closes:
                problems.append(
                    f"{fname}: {opens} '{unit}' opened but {closes} 'end {unit}' found"
                )

        # Collect declared entities and used components.
        for i, w in enumerate(words):
            if w == "entity" and (i == 0 or words[i - 1] != "end") and i + 2 < len(words) and words[i + 2] == "is":
                entities.add(words[i + 1])
            # "<label> : entity work.<name>" direct instantiation
            if w == "entity" and i + 2 < len(words) and words[i + 1] == "work" and words[i + 2] == ".":
                pass
        for m in re.finditer(r"entity\s+work\.([a-zA-Z][a-zA-Z0-9_]*)", text, re.IGNORECASE):
            components_used.append((fname, m.group(1).lower()))

        # Port directions must be legal.
        for m in re.finditer(r":\s*(in|out|inout|buffer|linkage|\w+)\s+std_logic", text, re.IGNORECASE):
            direction = m.group(1).lower()
            if direction not in ("in", "out", "inout", "buffer"):
                problems.append(f"{fname}: illegal port direction {direction!r}")

    for fname, comp in components_used:
        if comp not in entities:
            problems.append(f"{fname}: instantiates unknown entity work.{comp}")

    if problems:
        raise VhdlCheckError(problems)
