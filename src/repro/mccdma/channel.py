"""Channel models: AWGN and flat Rayleigh fading."""

from __future__ import annotations

import numpy as np

__all__ = ["AWGNChannel", "RayleighChannel", "snr_db_to_noise_std"]


def snr_db_to_noise_std(snr_db: float, signal_power: float = 1.0) -> float:
    """Per-complex-sample noise standard deviation for a target SNR."""
    snr_linear = 10.0 ** (snr_db / 10.0)
    noise_power = signal_power / snr_linear
    return float(np.sqrt(noise_power))


class AWGNChannel:
    """Additive white Gaussian noise at a configured SNR (per sample).

    ``seed`` may be an integer or a :class:`numpy.random.SeedSequence` —
    the link-level engine hands every frame its own spawned sequence so
    noise streams never collide across frames or seeds.
    """

    def __init__(self, snr_db: float, seed: "int | np.random.SeedSequence" = 0):
        self.snr_db = snr_db
        self._rng = np.random.default_rng(seed)

    def transmit(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size == 0:
            return samples.copy()
        power = float(np.mean(np.abs(samples) ** 2))
        std = snr_db_to_noise_std(self.snr_db, power)
        noise = (
            self._rng.standard_normal(samples.size) + 1j * self._rng.standard_normal(samples.size)
        ) * (std / np.sqrt(2.0))
        return samples + noise


class RayleighChannel:
    """Flat Rayleigh fading per OFDM symbol plus AWGN.

    The complex gain is constant within an OFDM symbol and redrawn across
    symbols (block fading) — the regime where SNR-adaptive modulation,
    hence runtime reconfiguration, pays off.
    """

    def __init__(self, snr_db: float, symbol_len: int, seed: int = 0):
        if symbol_len < 1:
            raise ValueError("symbol length must be positive")
        self.snr_db = snr_db
        self.symbol_len = symbol_len
        self._rng = np.random.default_rng(seed)
        self.last_gains: np.ndarray | None = None

    def transmit(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size % self.symbol_len:
            raise ValueError(
                f"sample count {samples.size} not a multiple of symbol length {self.symbol_len}"
            )
        n_sym = samples.size // self.symbol_len
        gains = (
            self._rng.standard_normal(n_sym) + 1j * self._rng.standard_normal(n_sym)
        ) / np.sqrt(2.0)
        self.last_gains = gains
        faded = (samples.reshape(n_sym, self.symbol_len) * gains[:, None]).reshape(-1)
        power = float(np.mean(np.abs(samples) ** 2))
        std = snr_db_to_noise_std(self.snr_db, power)
        noise = (
            self._rng.standard_normal(samples.size) + 1j * self._rng.standard_normal(samples.size)
        ) * (std / np.sqrt(2.0))
        return faded + noise

    def equalize(self, samples: np.ndarray) -> np.ndarray:
        """Zero-forcing equalization with the true gains (genie-aided)."""
        if self.last_gains is None:
            raise RuntimeError("equalize() before any transmit()")
        n_sym = samples.size // self.symbol_len
        gains = self.last_gains[:n_sym]
        return (samples.reshape(n_sym, self.symbol_len) / gains[:, None]).reshape(-1)
