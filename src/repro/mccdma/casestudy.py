"""The paper's case study as an executable design description.

Builds the SynDEx algorithm graph of the reconfigurable MC-CDMA transmitter
(Fig. 4), the Sundance architecture graph (Fig. 1), and the dynamic-module
constraints — everything :class:`repro.flows.DesignFlow` needs to run the
complete top-down methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.boards import Board, sundance_board
from repro.dfg import AlgorithmGraph, BIT, CPLX16, WORD32, validate_graph
from repro.dfg.library import OperationLibrary, default_library
from repro.mccdma.modulation import Modulation
from repro.mccdma.transmitter import MCCDMAConfig

__all__ = ["CaseStudyDesign", "build_mccdma_graph", "build_mccdma_design", "MODULATION_GROUP"]

#: Name of the condition group driving the dynamic modulation block.
MODULATION_GROUP = "modulation"

#: Per-OFDM-symbol token payloads used in the graph (worst case over the two
#: modulations, so both alternatives expose identical interfaces).
INFO_BITS = 16  # information bits entering the coder
CODED_BITS = 36  # rate-1/2 coded + tail, rounded to the buffer size
SYMBOLS = 4  # spread symbols per OFDM symbol (64 subcarriers / 16 chips)
CHIPS = 64  # chips = subcarriers
SAMPLES = 80  # subcarriers + cyclic prefix


def build_mccdma_graph() -> AlgorithmGraph:
    """The transmitter's algorithm graph with the conditioned modulation stage."""
    g = AlgorithmGraph("mccdma_tx")

    src = g.add_operation("bit_src", "bit_source")
    src.add_output("bits", BIT, INFO_BITS)

    sel = g.add_operation("select", "select_source")
    sel.add_output("value", WORD32, 1)

    iface = g.add_operation("interface_in_out", "interface_in_out")
    iface.add_input("din", BIT, INFO_BITS)
    iface.add_output("dout", BIT, INFO_BITS)

    coder = g.add_operation("coder", "channel_coder")
    coder.add_input("bits", BIT, INFO_BITS)
    coder.add_output("coded", BIT, CODED_BITS)

    ilv = g.add_operation("interleaver", "interleaver")
    ilv.add_input("coded", BIT, CODED_BITS)
    ilv.add_output("out_qpsk", BIT, CODED_BITS)
    ilv.add_output("out_qam16", BIT, CODED_BITS)

    qpsk = g.add_operation("mod_qpsk", "qpsk_mod")
    qpsk.add_input("bits", BIT, CODED_BITS)
    qpsk.add_output("symbols", CPLX16, SYMBOLS)

    qam16 = g.add_operation("mod_qam16", "qam16_mod")
    qam16.add_input("bits", BIT, CODED_BITS)
    qam16.add_output("symbols", CPLX16, SYMBOLS)

    merge = g.add_operation("mod_out", "cond_merge")
    merge.add_input("from_qpsk", CPLX16, SYMBOLS)
    merge.add_input("from_qam16", CPLX16, SYMBOLS)
    merge.add_output("symbols", CPLX16, SYMBOLS)

    spread = g.add_operation("spreader", "spreader")
    spread.add_input("symbols", CPLX16, SYMBOLS)
    spread.add_output("chips", CPLX16, CHIPS)

    mapper = g.add_operation("chip_map", "chip_mapper")
    mapper.add_input("chips", CPLX16, CHIPS)
    mapper.add_output("mapped", CPLX16, CHIPS)

    ifft = g.add_operation("ifft", "ifft64")
    ifft.add_input("freq", CPLX16, CHIPS)
    ifft.add_output("time", CPLX16, CHIPS)

    cp = g.add_operation("cyclic_prefix", "cyclic_prefix")
    cp.add_input("time", CPLX16, CHIPS)
    cp.add_output("extended", CPLX16, SAMPLES)

    framer = g.add_operation("framer", "framer")
    framer.add_input("symbol", CPLX16, SAMPLES)
    framer.add_output("frame", CPLX16, SAMPLES)

    dac = g.add_operation("dac", "dac_sink")
    dac.add_input("samples", CPLX16, SAMPLES)

    g.connect(src, "bits", iface, "din")
    g.connect(iface, "dout", coder, "bits")
    g.connect(coder, "coded", ilv, "coded")
    g.connect(ilv, "out_qpsk", qpsk, "bits")
    g.connect(ilv, "out_qam16", qam16, "bits")
    g.connect(qpsk, "symbols", merge, "from_qpsk")
    g.connect(qam16, "symbols", merge, "from_qam16")
    g.connect(merge, "symbols", spread, "symbols")
    g.connect(spread, "chips", mapper, "chips")
    g.connect(mapper, "mapped", ifft, "freq")
    g.connect(ifft, "time", cp, "time")
    g.connect(cp, "extended", framer, "symbol")
    g.connect(framer, "frame", dac, "samples")

    group = g.condition_group(MODULATION_GROUP, sel, "value")
    group.add_case(Modulation.QPSK, [qpsk])
    group.add_case(Modulation.QAM16, [qam16])
    return g


@dataclass
class CaseStudyDesign:
    """Everything the design flow consumes, in one object."""

    graph: AlgorithmGraph
    board: Board
    library: OperationLibrary
    signal_config: MCCDMAConfig = field(default_factory=MCCDMAConfig)

    @property
    def modulation_group(self) -> str:
        return MODULATION_GROUP

    def dynamic_alternatives(self) -> list[str]:
        group = self.graph.condition_groups[MODULATION_GROUP]
        return [op.name for op in group.operations]


def build_mccdma_design(n_dynamic: int = 1) -> CaseStudyDesign:
    """The complete case study: validated graph + Sundance board + library."""
    graph = build_mccdma_graph()
    library = default_library()
    validate_graph(graph, library)
    board = sundance_board(n_dynamic=n_dynamic)
    return CaseStudyDesign(graph=graph, board=board, library=library)
