"""Frame assembly: pilot symbols plus data symbols.

A frame opens with known pilot OFDM symbols (used by the receiver for
channel estimation under fading) followed by data OFDM symbols.  The frame
also carries, out of band, the modulation each data symbol used — modelling
the control information the DSP writes through ``Interface IN OUT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mccdma.modulation import Modulation

__all__ = ["FrameConfig", "Frame", "FrameBuilder"]


@dataclass(frozen=True)
class FrameConfig:
    """Shape of a transmit frame."""

    n_pilot_symbols: int = 2
    n_data_symbols: int = 8
    n_subcarriers: int = 64

    def __post_init__(self) -> None:
        if self.n_pilot_symbols < 0:
            raise ValueError("pilot symbol count must be >= 0")
        if self.n_data_symbols < 1:
            raise ValueError("need at least one data symbol per frame")
        if self.n_subcarriers < 2:
            raise ValueError("need at least two subcarriers")


@dataclass
class Frame:
    """One assembled frame: time-domain samples plus per-symbol metadata."""

    samples: np.ndarray
    modulations: tuple[Modulation, ...]
    n_pilot_symbols: int

    @property
    def n_data_symbols(self) -> int:
        return len(self.modulations)


class FrameBuilder:
    """Builds frames from per-symbol sample blocks and generates pilots."""

    def __init__(self, config: FrameConfig, symbol_len: int):
        if symbol_len < 1:
            raise ValueError("symbol length must be positive")
        self.config = config
        self.symbol_len = symbol_len

    def pilot_samples(self) -> np.ndarray:
        """Deterministic constant-envelope pilots (Zadoff-Chu-like ramp)."""
        n = self.config.n_pilot_symbols * self.symbol_len
        k = np.arange(n)
        return np.exp(1j * np.pi * k * (k + 1) / max(1, self.symbol_len))

    def build(
        self, data_symbols: Sequence[np.ndarray], modulations: Sequence[Modulation]
    ) -> Frame:
        """Assemble pilots + data symbol blocks into one frame."""
        if len(data_symbols) != self.config.n_data_symbols:
            raise ValueError(
                f"expected {self.config.n_data_symbols} data symbols, got {len(data_symbols)}"
            )
        if len(modulations) != len(data_symbols):
            raise ValueError("one modulation tag per data symbol required")
        for i, block in enumerate(data_symbols):
            if np.asarray(block).size != self.symbol_len:
                raise ValueError(
                    f"data symbol {i} has {np.asarray(block).size} samples, expected {self.symbol_len}"
                )
        payload = np.concatenate([np.asarray(b, dtype=np.complex128) for b in data_symbols])
        samples = np.concatenate([self.pilot_samples(), payload])
        return Frame(
            samples=samples,
            modulations=tuple(modulations),
            n_pilot_symbols=self.config.n_pilot_symbols,
        )

    def split(self, frame: Frame) -> tuple[np.ndarray, np.ndarray]:
        """Separate a frame back into (pilot samples, data samples)."""
        n_pilot = frame.n_pilot_symbols * self.symbol_len
        return frame.samples[:n_pilot], frame.samples[n_pilot:]
