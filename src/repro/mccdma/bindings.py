"""Functional bindings: run real MC-CDMA data through the simulated system.

The executive interpreter can thread actual values through the macro-code
(the flow's dynamic verification).  These bindings implement every operation
kind of the case-study graph with the bit-exact DSP blocks of
:mod:`repro.mccdma`, so the samples leaving the simulated DAC can be checked
against the monolithic reference transmitter.

Per-iteration payload (single user): ``INFO_BITS`` information bits are
coded (rate 1/2 + tail), interleaved, modulated (QPSK takes the first 8
coded bits, QAM-16 the first 16 — 4 symbols either way), spread by a
16-chip Walsh code across the 64 subcarriers, IFFT'd and extended with the
cyclic prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.mccdma.bits import BitSource
from repro.mccdma.coding import ConvolutionalCoder
from repro.mccdma.interleaving import BlockInterleaver
from repro.mccdma.modulation import Modulation, modulator_for
from repro.mccdma.spreading import WalshSpreader

__all__ = ["CaseStudyBindings", "make_case_study_bindings", "reference_symbol"]

INFO_BITS = 16
CODED_BITS = 36  # 2*(16+2)
ILV_ROWS, ILV_COLS = 6, 6
SPREAD_LEN = 16
N_SUBCARRIERS = 64
CP_LEN = 16
SYMBOLS_PER_OFDM = N_SUBCARRIERS // SPREAD_LEN  # 4


def _bits_for(modulation: Modulation) -> int:
    return SYMBOLS_PER_OFDM * modulation.bits_per_symbol  # 8 or 16


@dataclass
class CaseStudyBindings:
    """State + binding table for one simulation run."""

    snr_trace: Sequence[float]
    seed: int = 0
    threshold_db: float = 14.0
    hysteresis_db: float = 1.0
    bindings: dict[str, Callable] = field(init=False)

    def __post_init__(self) -> None:
        self._source = BitSource(self.seed)
        self._coder = ConvolutionalCoder()
        self._interleaver = BlockInterleaver(ILV_ROWS, ILV_COLS)
        self._spreader = WalshSpreader(SPREAD_LEN, [0])
        from repro.mccdma.adaptive import AdaptiveModulationController

        self._controller = AdaptiveModulationController(
            threshold_db=self.threshold_db, hysteresis_db=self.hysteresis_db
        )
        self.selected: list[Modulation] = []
        self.source_bits: list[np.ndarray] = []
        self.bindings = {
            "bit_source": self._bit_source,
            "select_source": self._select_source,
            "interface_in_out": self._interface,
            "channel_coder": self._coder_bind,
            "interleaver": self._interleave,
            "qpsk_mod": self._make_modulator(Modulation.QPSK),
            "qam16_mod": self._make_modulator(Modulation.QAM16),
            "cond_merge": self._merge,
            "spreader": self._spread,
            "chip_mapper": self._chip_map,
            "ifft64": self._ifft,
            "cyclic_prefix": self._cyclic_prefix,
            "framer": self._frame,
            "dac_sink": self._dac,
        }

    # -- individual blocks -------------------------------------------------------

    def _bit_source(self, inputs: dict, params: dict) -> dict:
        bits = self._source.take(INFO_BITS)
        self.source_bits.append(bits)
        return {"bits": bits}

    def _select_source(self, inputs: dict, params: dict) -> dict:
        iteration = params["iteration"]
        snr = float(self.snr_trace[iteration % len(self.snr_trace)])
        choice = self._controller.select(snr)
        self.selected.append(choice)
        return {"value": choice}

    @staticmethod
    def _interface(inputs: dict, params: dict) -> dict:
        return {"dout": inputs["din"]}

    def _coder_bind(self, inputs: dict, params: dict) -> dict:
        return {"coded": self._coder.encode(inputs["bits"])}

    def _interleave(self, inputs: dict, params: dict) -> dict:
        coded = np.asarray(inputs["coded"])
        out = self._interleaver.interleave(coded)
        return {"out_qpsk": out, "out_qam16": out}

    def _make_modulator(self, modulation: Modulation):
        mod = modulator_for(modulation)
        take = _bits_for(modulation)

        def bind(inputs: dict, params: dict) -> dict:
            bits = np.asarray(inputs["bits"])[:take]
            return {"symbols": mod.modulate(bits)}

        return bind

    @staticmethod
    def _merge(inputs: dict, params: dict) -> dict:
        for key in ("from_qpsk", "from_qam16"):
            value = inputs.get(key)
            if value is not None:
                return {"symbols": value}
        return {"symbols": None}

    def _spread(self, inputs: dict, params: dict) -> dict:
        symbols = np.asarray(inputs["symbols"]).reshape(1, -1)
        return {"chips": self._spreader.spread(symbols)}

    @staticmethod
    def _chip_map(inputs: dict, params: dict) -> dict:
        return {"mapped": inputs["chips"]}

    @staticmethod
    def _ifft(inputs: dict, params: dict) -> dict:
        return {"time": np.fft.ifft(np.asarray(inputs["freq"]), norm="ortho")}

    @staticmethod
    def _cyclic_prefix(inputs: dict, params: dict) -> dict:
        time = np.asarray(inputs["time"])
        return {"extended": np.concatenate([time[-CP_LEN:], time])}

    @staticmethod
    def _frame(inputs: dict, params: dict) -> dict:
        return {"frame": inputs["symbol"]}

    @staticmethod
    def _dac(inputs: dict, params: dict) -> dict:
        return {"samples": inputs["samples"]}


def make_case_study_bindings(
    snr_trace: Sequence[float], seed: int = 0, **kwargs
) -> CaseStudyBindings:
    """Bindings for :func:`repro.mccdma.casestudy.build_mccdma_graph`."""
    return CaseStudyBindings(snr_trace=list(snr_trace), seed=seed, **kwargs)


def reference_symbol(bits: np.ndarray, modulation: Modulation) -> np.ndarray:
    """The monolithic reference computation of one OFDM symbol.

    Applies exactly the same chain as the bindings (coder → interleaver →
    modulation → spreading → IFFT → CP) in plain numpy, for verifying the
    distributed simulation sample by sample.
    """
    coder = ConvolutionalCoder()
    interleaver = BlockInterleaver(ILV_ROWS, ILV_COLS)
    spreader = WalshSpreader(SPREAD_LEN, [0])
    coded = interleaver.interleave(coder.encode(np.asarray(bits, dtype=np.uint8)))
    mod = modulator_for(modulation)
    symbols = mod.modulate(coded[: _bits_for(modulation)])
    chips = spreader.spread(symbols.reshape(1, -1))
    time = np.fft.ifft(chips, norm="ortho")
    return np.concatenate([time[-CP_LEN:], time])
