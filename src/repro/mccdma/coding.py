"""Channel coding: rate-1/2 convolutional code with Viterbi decoding.

The transmitter chain of Fig. 4 contains a channel-coding block ahead of the
interleaver.  We implement the classic K=3, rate-1/2 code (generators 7, 5
octal) with zero-termination, plus a hard-decision Viterbi decoder for the
reference receiver.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ConvolutionalCoder"]


class ConvolutionalCoder:
    """K=3 rate-1/2 convolutional code, generators (0o7, 0o5), zero-tailed."""

    CONSTRAINT = 3
    G = (0b111, 0b101)

    @property
    def n_states(self) -> int:
        return 1 << (self.CONSTRAINT - 1)

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode (appends K-1 tail zeros): ``n`` bits → ``2*(n+2)`` bits."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be 1-D")
        if bits.size and bits.max() > 1:
            raise ValueError("bits must be 0/1")
        tailed = np.concatenate([bits, np.zeros(self.CONSTRAINT - 1, dtype=np.uint8)])
        out = np.empty(2 * tailed.size, dtype=np.uint8)
        state = 0
        for i, b in enumerate(tailed):
            reg = (int(b) << (self.CONSTRAINT - 1)) | state
            out[2 * i] = bin(reg & self.G[0]).count("1") & 1
            out[2 * i + 1] = bin(reg & self.G[1]).count("1") & 1
            state = reg >> 1
        return out

    def decode(self, coded: np.ndarray) -> np.ndarray:
        """Hard-decision Viterbi decode; returns the information bits."""
        coded = np.asarray(coded, dtype=np.uint8)
        if coded.size % 2:
            raise ValueError("coded length must be even (rate 1/2)")
        n_steps = coded.size // 2
        if n_steps < self.CONSTRAINT - 1:
            raise ValueError("coded sequence shorter than the tail")
        n_states = self.n_states
        INF = 1 << 30

        # Precompute transitions: (state, input) -> (next_state, out0, out1)
        nxt = np.zeros((n_states, 2), dtype=np.int64)
        outs = np.zeros((n_states, 2, 2), dtype=np.uint8)
        for s in range(n_states):
            for b in (0, 1):
                reg = (b << (self.CONSTRAINT - 1)) | s
                nxt[s, b] = reg >> 1
                outs[s, b, 0] = bin(reg & self.G[0]).count("1") & 1
                outs[s, b, 1] = bin(reg & self.G[1]).count("1") & 1

        metric = np.full(n_states, INF, dtype=np.int64)
        metric[0] = 0
        backptr = np.zeros((n_steps, n_states), dtype=np.uint8)
        prev_state = np.zeros((n_steps, n_states), dtype=np.int64)
        for t in range(n_steps):
            r0, r1 = int(coded[2 * t]), int(coded[2 * t + 1])
            new_metric = np.full(n_states, INF, dtype=np.int64)
            for s in range(n_states):
                if metric[s] >= INF:
                    continue
                for b in (0, 1):
                    ns = nxt[s, b]
                    cost = (outs[s, b, 0] ^ r0) + (outs[s, b, 1] ^ r1)
                    cand = metric[s] + cost
                    if cand < new_metric[ns]:
                        new_metric[ns] = cand
                        backptr[t, ns] = b
                        prev_state[t, ns] = s
            metric = new_metric

        # Zero-termination: trace back from state 0.
        state = 0
        decoded = np.empty(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            decoded[t] = backptr[t, state]
            state = prev_state[t, state]
        return decoded[: n_steps - (self.CONSTRAINT - 1)]  # drop the tail

    def coded_length(self, n_info_bits: int) -> int:
        """Coded bits produced for ``n_info_bits`` information bits."""
        if n_info_bits < 0:
            raise ValueError("bit count must be >= 0")
        return 2 * (n_info_bits + self.CONSTRAINT - 1)

    def info_length(self, n_coded_bits: int) -> int:
        """Information bits recoverable from ``n_coded_bits`` coded bits."""
        if n_coded_bits % 2:
            raise ValueError("coded length must be even")
        info = n_coded_bits // 2 - (self.CONSTRAINT - 1)
        if info < 0:
            raise ValueError("coded sequence shorter than the tail")
        return info
