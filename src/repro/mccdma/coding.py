"""Channel coding: rate-1/2 convolutional code with Viterbi decoding.

The transmitter chain of Fig. 4 contains a channel-coding block ahead of the
interleaver.  We implement the classic K=3, rate-1/2 code (generators 7, 5
octal) with zero-termination, plus a hard-decision Viterbi decoder for the
reference receiver.

Both directions are vectorized: the encoder turns the shift register into a
sliding window of K bits and assembles both generator outputs with table
lookups; the decoder runs the add-compare-select recursion over *all* states
(and, in :meth:`ConvolutionalCoder.decode_batch`, all frames) per trellis
step.  The original scalar implementations are retained verbatim as
``encode_reference``/``decode_reference`` so property tests can assert the
vectorized kernels are bit-exact against the seed path.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["ConvolutionalCoder"]

#: Path-metric value standing in for "state unreachable".
_INF = 1 << 30


@lru_cache(maxsize=None)
def _trellis_tables(constraint: int, generators: tuple[int, ...]):
    """Precomputed trellis tables, shared by every coder instance.

    Returns ``(out_bits, pred_state, pred_input, pred_out)``:

    - ``out_bits[reg, g]`` — parity of ``reg & generators[g]`` for every
      K-bit register window ``reg`` (newest bit in the MSB);
    - ``pred_state[ns, k]`` / ``pred_input[ns, k]`` / ``pred_out[ns, k, g]``
      — the k-th incoming trellis edge of next-state ``ns``.  Column order
      follows the scalar decoder's visit order (state ascending, input bit
      inner), so ``argmin`` tie-breaking reproduces its survivor choices.
    """
    n_states = 1 << (constraint - 1)
    n_regs = 1 << constraint
    out_bits = np.empty((n_regs, len(generators)), dtype=np.uint8)
    for gi, g in enumerate(generators):
        for reg in range(n_regs):
            out_bits[reg, gi] = bin(reg & g).count("1") & 1
    pred_state = np.empty((n_states, 2), dtype=np.int64)
    pred_input = np.empty((n_states, 2), dtype=np.uint8)
    pred_out = np.empty((n_states, 2, len(generators)), dtype=np.uint8)
    slot = [0] * n_states
    for s in range(n_states):
        for b in (0, 1):
            reg = (b << (constraint - 1)) | s
            ns = reg >> 1
            k = slot[ns]
            slot[ns] = k + 1
            pred_state[ns, k] = s
            pred_input[ns, k] = b
            pred_out[ns, k] = out_bits[reg]
    for arr in (out_bits, pred_state, pred_input, pred_out):
        arr.setflags(write=False)
    return out_bits, pred_state, pred_input, pred_out


class ConvolutionalCoder:
    """K=3 rate-1/2 convolutional code, generators (0o7, 0o5), zero-tailed."""

    CONSTRAINT = 3
    G = (0b111, 0b101)

    @property
    def n_states(self) -> int:
        return 1 << (self.CONSTRAINT - 1)

    # -- encoding ----------------------------------------------------------------

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode (appends K-1 tail zeros): ``n`` bits → ``2*(n+2)`` bits."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be 1-D")
        if bits.size and bits.max() > 1:
            raise ValueError("bits must be 0/1")
        k = self.CONSTRAINT
        tailed = np.concatenate([bits, np.zeros(k - 1, dtype=np.uint8)])
        n = tailed.size
        # The register at step i is the window (b_i, b_{i-1}, …, b_{i-K+1})
        # with b_{<0} = 0 — a pure sliding window once the state recursion is
        # unrolled, so the whole codeword is two table lookups.
        padded = np.concatenate([np.zeros(k - 1, dtype=np.uint8), tailed]).astype(np.int64)
        regs = np.zeros(n, dtype=np.int64)
        for age in range(k):
            regs |= padded[k - 1 - age : k - 1 - age + n] << (k - 1 - age)
        out_bits, _, _, _ = _trellis_tables(self.CONSTRAINT, self.G)
        out = np.empty(2 * n, dtype=np.uint8)
        out[0::2] = out_bits[regs, 0]
        out[1::2] = out_bits[regs, 1]
        return out

    def encode_reference(self, bits: np.ndarray) -> np.ndarray:
        """The seed's scalar encoder, retained for bit-exactness tests."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be 1-D")
        if bits.size and bits.max() > 1:
            raise ValueError("bits must be 0/1")
        tailed = np.concatenate([bits, np.zeros(self.CONSTRAINT - 1, dtype=np.uint8)])
        out = np.empty(2 * tailed.size, dtype=np.uint8)
        state = 0
        for i, b in enumerate(tailed):
            reg = (int(b) << (self.CONSTRAINT - 1)) | state
            out[2 * i] = bin(reg & self.G[0]).count("1") & 1
            out[2 * i + 1] = bin(reg & self.G[1]).count("1") & 1
            state = reg >> 1
        return out

    # -- decoding ----------------------------------------------------------------

    def _check_coded(self, coded: np.ndarray, length: int) -> int:
        if length % 2:
            raise ValueError("coded length must be even (rate 1/2)")
        n_steps = length // 2
        if n_steps < self.CONSTRAINT - 1:
            raise ValueError("coded sequence shorter than the tail")
        return n_steps

    def decode(self, coded: np.ndarray) -> np.ndarray:
        """Hard-decision Viterbi decode; returns the information bits."""
        coded = np.asarray(coded, dtype=np.uint8)
        if coded.ndim != 1:
            raise ValueError("coded input must be 1-D (use decode_batch for frames)")
        self._check_coded(coded, coded.size)
        return self._decode_block(coded[None, :])[0]

    def decode_batch(self, coded: np.ndarray) -> np.ndarray:
        """Decode a ``(n_frames, n_coded)`` block in one trellis sweep.

        Every frame must have the same coded length; the result has shape
        ``(n_frames, n_info)``.  Row ``i`` is bit-identical to
        ``decode(coded[i])``.
        """
        coded = np.asarray(coded, dtype=np.uint8)
        if coded.ndim != 2:
            raise ValueError("decode_batch expects a (n_frames, n_coded) array")
        self._check_coded(coded, coded.shape[1])
        return self._decode_block(coded)

    def _decode_block(self, coded: np.ndarray) -> np.ndarray:
        n_frames, width = coded.shape
        n_steps = width // 2
        n_states = self.n_states
        _, pred_state, pred_input, pred_out = _trellis_tables(self.CONSTRAINT, self.G)
        r = coded.reshape(n_frames, n_steps, 2)
        metric = np.full((n_frames, n_states), _INF, dtype=np.int64)
        metric[:, 0] = 0
        # Chosen predecessor slot (0/1) per (frame, step, state).
        choice = np.empty((n_frames, n_steps, n_states), dtype=np.uint8)
        out0 = pred_out[:, :, 0].astype(np.int64)  # (states, 2)
        out1 = pred_out[:, :, 1].astype(np.int64)
        for t in range(n_steps):
            r0 = r[:, t, 0].astype(np.int64)[:, None, None]  # (frames, 1, 1)
            r1 = r[:, t, 1].astype(np.int64)[:, None, None]
            cost = (out0[None] ^ r0) + (out1[None] ^ r1)  # (frames, states, 2)
            cand = metric[:, pred_state] + cost
            k = np.argmin(cand, axis=2)  # ties → slot 0, the scalar visit order
            choice[:, t, :] = k
            new_metric = np.take_along_axis(cand, k[:, :, None], axis=2)[:, :, 0]
            # Unreachable states stay at exactly _INF, as in the scalar path.
            metric = np.minimum(new_metric, _INF)
        self._check_survivor(metric)
        # Zero-termination: trace every frame back from state 0.
        state = np.zeros(n_frames, dtype=np.int64)
        rows = np.arange(n_frames)
        decoded = np.empty((n_frames, n_steps), dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            k = choice[rows, t, state]
            decoded[:, t] = pred_input[state, k]
            state = pred_state[state, k]
        return decoded[:, : n_steps - (self.CONSTRAINT - 1)]  # drop the tail

    @staticmethod
    def _check_survivor(metric: np.ndarray) -> None:
        """Reject a forward pass that left the traceback state unreachable.

        ``metric`` is the final path-metric matrix ``(n_frames, n_states)``;
        zero-termination means the traceback starts at state 0, so a metric
        of ``_INF`` there leaves no surviving path to follow.
        """
        dead = np.flatnonzero(np.asarray(metric)[:, 0] >= _INF)
        if dead.size:
            raise ValueError(
                "Viterbi decode: no surviving path into state 0 for frame(s) "
                f"{dead.tolist()} — the coded input is likely not "
                "zero-terminated (encode() appends K-1 tail zeros) or was "
                "truncated to an impossible state sequence"
            )

    def decode_reference(self, coded: np.ndarray) -> np.ndarray:
        """The seed's scalar Viterbi decoder, retained for bit-exactness tests."""
        coded = np.asarray(coded, dtype=np.uint8)
        if coded.size % 2:
            raise ValueError("coded length must be even (rate 1/2)")
        n_steps = coded.size // 2
        if n_steps < self.CONSTRAINT - 1:
            raise ValueError("coded sequence shorter than the tail")
        n_states = self.n_states
        INF = _INF

        # Precompute transitions: (state, input) -> (next_state, out0, out1)
        nxt = np.zeros((n_states, 2), dtype=np.int64)
        outs = np.zeros((n_states, 2, 2), dtype=np.uint8)
        for s in range(n_states):
            for b in (0, 1):
                reg = (b << (self.CONSTRAINT - 1)) | s
                nxt[s, b] = reg >> 1
                outs[s, b, 0] = bin(reg & self.G[0]).count("1") & 1
                outs[s, b, 1] = bin(reg & self.G[1]).count("1") & 1

        metric = np.full(n_states, INF, dtype=np.int64)
        metric[0] = 0
        backptr = np.zeros((n_steps, n_states), dtype=np.uint8)
        prev_state = np.zeros((n_steps, n_states), dtype=np.int64)
        for t in range(n_steps):
            r0, r1 = int(coded[2 * t]), int(coded[2 * t + 1])
            new_metric = np.full(n_states, INF, dtype=np.int64)
            for s in range(n_states):
                if metric[s] >= INF:
                    continue
                for b in (0, 1):
                    ns = nxt[s, b]
                    cost = (outs[s, b, 0] ^ r0) + (outs[s, b, 1] ^ r1)
                    cand = metric[s] + cost
                    if cand < new_metric[ns]:
                        new_metric[ns] = cand
                        backptr[t, ns] = b
                        prev_state[t, ns] = s
            metric = new_metric

        # Zero-termination: trace back from state 0.
        state = 0
        decoded = np.empty(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            decoded[t] = backptr[t, state]
            state = prev_state[t, state]
        return decoded[: n_steps - (self.CONSTRAINT - 1)]  # drop the tail

    # -- sizing ------------------------------------------------------------------

    def coded_length(self, n_info_bits: int) -> int:
        """Coded bits produced for ``n_info_bits`` information bits."""
        if n_info_bits < 0:
            raise ValueError("bit count must be >= 0")
        return 2 * (n_info_bits + self.CONSTRAINT - 1)

    def info_length(self, n_coded_bits: int) -> int:
        """Information bits recoverable from ``n_coded_bits`` coded bits."""
        if n_coded_bits % 2:
            raise ValueError("coded length must be even")
        info = n_coded_bits // 2 - (self.CONSTRAINT - 1)
        if info < 0:
            raise ValueError("coded sequence shorter than the tail")
        return info
