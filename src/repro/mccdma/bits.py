"""Bit sources and bit/byte helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["BitSource", "bits_to_bytes", "bytes_to_bits"]


class BitSource:
    """Deterministic pseudo-random bit source (the MAC-layer stand-in).

    Uses a seeded PCG64 generator so every experiment is reproducible; the
    DSP operator of the case study runs this as its ``bit_source`` operation.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self.produced = 0

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` bits as a uint8 array of 0/1."""
        if n < 0:
            raise ValueError(f"bit count must be >= 0, got {n}")
        self.produced += n
        return self._rng.integers(0, 2, size=n, dtype=np.uint8)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 array MSB-first into bytes (zero-padded to a byte edge)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if bits.size == 0:
        return b""
    pad = (-bits.size) % 8
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
    return np.packbits(bits).tobytes()


def bytes_to_bits(data: bytes, nbits: int | None = None) -> np.ndarray:
    """Unpack bytes MSB-first into a 0/1 array, truncated to ``nbits``."""
    arr = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(arr)
    if nbits is not None:
        if nbits > bits.size:
            raise ValueError(f"asked for {nbits} bits, only {bits.size} available")
        bits = bits[:nbits]
    return bits.astype(np.uint8)
