"""MC-CDMA transmitter case study (bit-accurate signal processing).

The paper's evaluation application is "a transmitter system for future
wireless networks for 4G air interface … based on MC-CDMA modulation scheme"
(Lenours, Nouvel, Hélard, EURASIP JASP 2004).  The transmit chain implemented
here mirrors the algorithm graph of the paper's Fig. 4:

    bit source → channel coder → interleaver → **modulation (QPSK | QAM-16,
    runtime selected)** → Walsh-Hadamard spreading → chip mapping → 64-point
    IFFT → cyclic prefix → framing → DAC

plus an AWGN/Rayleigh channel and a reference receiver so tests can close
the loop on bit-error rate.

Modules:

- :mod:`repro.mccdma.bits` — deterministic bit sources and helpers,
- :mod:`repro.mccdma.modulation` — QPSK / QAM-16 Gray mappers (the dynamic block),
- :mod:`repro.mccdma.spreading` — Walsh-Hadamard spreading and despreading,
- :mod:`repro.mccdma.ofdm` — IFFT multiplexing and cyclic prefix,
- :mod:`repro.mccdma.framing` — pilot/data framing,
- :mod:`repro.mccdma.channel` — AWGN and flat-fading channels,
- :mod:`repro.mccdma.transmitter` — the composed transmit chain,
- :mod:`repro.mccdma.receiver` — reference receiver and BER/EVM metrics,
- :mod:`repro.mccdma.adaptive` — SNR-driven modulation selection (the
  ``Select`` conditional input driving reconfiguration),
- :mod:`repro.mccdma.engine` — batched Monte-Carlo link-simulation engine
  (vectorized frame batches, collision-free seeding, early stopping,
  multi-process SNR sweeps),
- :mod:`repro.mccdma.linklevel` — strategy comparison wrappers over the
  engine,
- :mod:`repro.mccdma.casestudy` — the paper's algorithm graph built on
  :mod:`repro.dfg`.
"""

from repro.mccdma.bits import BitSource, bits_to_bytes, bytes_to_bits
from repro.mccdma.modulation import (
    Modulation,
    QPSKModulator,
    QAM16Modulator,
    modulator_for,
    modulation_runs,
)
from repro.mccdma.spreading import WalshSpreader, walsh_matrix
from repro.mccdma.ofdm import OFDMModulator
from repro.mccdma.framing import FrameBuilder, FrameConfig
from repro.mccdma.channel import AWGNChannel, RayleighChannel
from repro.mccdma.transmitter import MCCDMAConfig, MCCDMATransmitter
from repro.mccdma.receiver import MCCDMAReceiver, bit_error_rate, error_vector_magnitude
from repro.mccdma.adaptive import AdaptiveModulationController, SnrTrace
from repro.mccdma.engine import (
    LinkEngineConfig,
    LinkPointJob,
    LinkResult,
    LinkSimulationEngine,
    frame_seed_sequences,
    wilson_halfwidth,
)
from repro.mccdma.linklevel import adaptive_vs_fixed, simulate_link

__all__ = [
    "BitSource",
    "bits_to_bytes",
    "bytes_to_bits",
    "Modulation",
    "QPSKModulator",
    "QAM16Modulator",
    "modulator_for",
    "WalshSpreader",
    "walsh_matrix",
    "OFDMModulator",
    "FrameBuilder",
    "FrameConfig",
    "AWGNChannel",
    "RayleighChannel",
    "MCCDMAConfig",
    "MCCDMATransmitter",
    "MCCDMAReceiver",
    "bit_error_rate",
    "error_vector_magnitude",
    "AdaptiveModulationController",
    "SnrTrace",
    "modulation_runs",
    "LinkEngineConfig",
    "LinkPointJob",
    "LinkResult",
    "LinkSimulationEngine",
    "frame_seed_sequences",
    "wilson_halfwidth",
    "adaptive_vs_fixed",
    "simulate_link",
]
