"""Block interleaving (row-in, column-out)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["BlockInterleaver"]


@lru_cache(maxsize=None)
def _permutations(rows: int, cols: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached (interleave, deinterleave) index permutations for one geometry.

    ``fwd[k]`` is the input index written to output position ``k`` by the
    row-in/column-out read; ``inv`` is its inverse.  Both are read-only and
    shared by every interleaver of the same shape, so per-frame construction
    stops rebuilding them.
    """
    fwd = np.arange(rows * cols).reshape(rows, cols).T.ravel()
    inv = np.empty_like(fwd)
    inv[fwd] = np.arange(fwd.size)
    fwd.setflags(write=False)
    inv.setflags(write=False)
    return fwd, inv


class BlockInterleaver:
    """A rows×cols block interleaver.

    Bits are written row-wise and read column-wise, breaking up burst errors
    across coded blocks.  ``interleave`` and ``deinterleave`` are exact
    inverses for inputs whose length is a multiple of ``rows*cols``.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("interleaver dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._fwd, self._inv = _permutations(rows, cols)

    @property
    def block_size(self) -> int:
        return self.rows * self.cols

    def _check(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValueError("interleaver input must be 1-D")
        if data.size % self.block_size:
            raise ValueError(
                f"length {data.size} not a multiple of block size {self.block_size}"
            )
        return data

    def interleave(self, data: np.ndarray) -> np.ndarray:
        data = self._check(data)
        return data.reshape(-1, self.block_size)[:, self._fwd].reshape(-1)

    def deinterleave(self, data: np.ndarray) -> np.ndarray:
        data = self._check(data)
        return data.reshape(-1, self.block_size)[:, self._inv].reshape(-1)
