"""Block interleaving (row-in, column-out)."""

from __future__ import annotations

import numpy as np

__all__ = ["BlockInterleaver"]


class BlockInterleaver:
    """A rows×cols block interleaver.

    Bits are written row-wise and read column-wise, breaking up burst errors
    across coded blocks.  ``interleave`` and ``deinterleave`` are exact
    inverses for inputs whose length is a multiple of ``rows*cols``.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("interleaver dimensions must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def block_size(self) -> int:
        return self.rows * self.cols

    def _check(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValueError("interleaver input must be 1-D")
        if data.size % self.block_size:
            raise ValueError(
                f"length {data.size} not a multiple of block size {self.block_size}"
            )
        return data

    def interleave(self, data: np.ndarray) -> np.ndarray:
        data = self._check(data)
        blocks = data.reshape(-1, self.rows, self.cols)
        return blocks.transpose(0, 2, 1).reshape(-1)

    def deinterleave(self, data: np.ndarray) -> np.ndarray:
        data = self._check(data)
        blocks = data.reshape(-1, self.cols, self.rows)
        return blocks.transpose(0, 2, 1).reshape(-1)
