"""OFDM multiplexing: subcarrier mapping, IFFT and cyclic prefix."""

from __future__ import annotations

import numpy as np

__all__ = ["OFDMModulator"]


class OFDMModulator:
    """Maps chips onto subcarriers, IFFTs, and inserts the cyclic prefix.

    The transform is normalized (``norm="ortho"``) so time- and frequency-
    domain powers match, keeping SNR definitions consistent across the chain.
    """

    def __init__(self, n_subcarriers: int = 64, cp_len: int = 16):
        if n_subcarriers < 2 or n_subcarriers & (n_subcarriers - 1):
            raise ValueError(f"subcarrier count must be a power of two, got {n_subcarriers}")
        if not 0 <= cp_len <= n_subcarriers:
            raise ValueError(f"cyclic prefix {cp_len} must be within 0..{n_subcarriers}")
        self.n_subcarriers = n_subcarriers
        self.cp_len = cp_len

    @property
    def symbol_len(self) -> int:
        """Time-domain samples per OFDM symbol, prefix included."""
        return self.n_subcarriers + self.cp_len

    def modulate(self, chips: np.ndarray) -> np.ndarray:
        """Frequency-domain chips → time-domain OFDM symbols (with CP).

        ``chips`` length must be a multiple of the subcarrier count; each
        group of ``n_subcarriers`` chips becomes one OFDM symbol.
        """
        chips = np.asarray(chips, dtype=np.complex128)
        if chips.size % self.n_subcarriers:
            raise ValueError(
                f"chip count {chips.size} not a multiple of {self.n_subcarriers} subcarriers"
            )
        blocks = chips.reshape(-1, self.n_subcarriers)
        time = np.fft.ifft(blocks, axis=1, norm="ortho")
        if self.cp_len:
            prefix = time[:, -self.cp_len :]
            time = np.concatenate([prefix, time], axis=1)
        return time.reshape(-1)

    def demodulate(self, samples: np.ndarray) -> np.ndarray:
        """Time-domain samples (with CP) → frequency-domain chips."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size % self.symbol_len:
            raise ValueError(
                f"sample count {samples.size} not a multiple of symbol length {self.symbol_len}"
            )
        blocks = samples.reshape(-1, self.symbol_len)
        body = blocks[:, self.cp_len :]
        freq = np.fft.fft(body, axis=1, norm="ortho")
        return freq.reshape(-1)

    def n_symbols(self, n_chips: int) -> int:
        """OFDM symbols needed for ``n_chips`` frequency-domain chips."""
        if n_chips % self.n_subcarriers:
            raise ValueError(f"{n_chips} chips do not fill whole OFDM symbols")
        return n_chips // self.n_subcarriers
