"""QPSK and QAM-16 Gray-mapped modulators — the paper's dynamic block.

"Block modulation performs either a QPSK or QAM-16 modulation.  This
adaptive modulation is selected by the conditional entry Select which
defines the modulation of each OFDM symbol according to the signal to noise
ratio."

Both constellations are normalized to unit average symbol energy so the
receiver and channel see a consistent Es regardless of the selected scheme.
"""

from __future__ import annotations

import enum
from typing import Iterable, Protocol, Sequence

import numpy as np

__all__ = [
    "Modulation",
    "Modulator",
    "QPSKModulator",
    "QAM16Modulator",
    "modulator_for",
    "modulation_runs",
]


class Modulation(enum.Enum):
    """The two alternatives of the reconfigurable modulation block."""

    QPSK = "qpsk"
    QAM16 = "qam16"

    @property
    def bits_per_symbol(self) -> int:
        return {Modulation.QPSK: 2, Modulation.QAM16: 4}[self]


class Modulator(Protocol):
    """Common interface of the modulation alternatives."""

    modulation: Modulation

    def modulate(self, bits: np.ndarray) -> np.ndarray: ...

    def demodulate(self, symbols: np.ndarray) -> np.ndarray: ...


def _check_bits(bits: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("bits must be 1-D")
    if bits.size % bits_per_symbol:
        raise ValueError(f"bit count {bits.size} not a multiple of {bits_per_symbol}")
    if bits.size and bits.max() > 1:
        raise ValueError("bits must be 0/1")
    return bits


class QPSKModulator:
    """Gray-mapped QPSK: 2 bits/symbol, constellation (±1 ± 1j)/√2."""

    modulation = Modulation.QPSK
    _SCALE = 1.0 / np.sqrt(2.0)

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = _check_bits(bits, 2)
        pairs = bits.reshape(-1, 2)
        # Gray mapping: bit 0 -> I sign, bit 1 -> Q sign (0 -> +, 1 -> -).
        i = 1.0 - 2.0 * pairs[:, 0]
        q = 1.0 - 2.0 * pairs[:, 1]
        return (i + 1j * q) * self._SCALE

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.complex128)
        bits = np.empty((symbols.size, 2), dtype=np.uint8)
        bits[:, 0] = (symbols.real < 0).astype(np.uint8)
        bits[:, 1] = (symbols.imag < 0).astype(np.uint8)
        return bits.reshape(-1)


# Gray-coded 4-PAM levels indexed by the 2-bit label (b_high, b_low):
# 00 -> +3, 01 -> +1, 11 -> -1, 10 -> -3 (adjacent labels differ by one bit).
_PAM4_LEVELS = np.array([3.0, 1.0, -3.0, -1.0])


def _pam4_bits(levels: np.ndarray) -> np.ndarray:
    """Hard-decision Gray demap of 4-PAM levels to (b_high, b_low) pairs."""
    out = np.empty((levels.size, 2), dtype=np.uint8)
    out[:, 0] = (levels < 0).astype(np.uint8)  # high bit = sign
    out[:, 1] = (np.abs(levels) < 2).astype(np.uint8)  # low bit = inner ring
    return out


class QAM16Modulator:
    """Gray-mapped 16-QAM: 4 bits/symbol, unit average energy (scale 1/√10)."""

    modulation = Modulation.QAM16
    _SCALE = 1.0 / np.sqrt(10.0)

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = _check_bits(bits, 4)
        quads = bits.reshape(-1, 4)
        i_idx = quads[:, 0] * 2 + quads[:, 1]
        q_idx = quads[:, 2] * 2 + quads[:, 3]
        i = _PAM4_LEVELS[i_idx]
        q = _PAM4_LEVELS[q_idx]
        return (i + 1j * q) * self._SCALE

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.complex128) / self._SCALE
        i_bits = _pam4_bits(symbols.real)
        q_bits = _pam4_bits(symbols.imag)
        out = np.empty((symbols.size, 4), dtype=np.uint8)
        out[:, 0:2] = i_bits
        out[:, 2:4] = q_bits
        return out.reshape(-1)


#: Shared stateless modulator instances — ``modulate``/``demodulate`` keep no
#: state, so per-symbol construction was pure overhead on the link hot path.
_MODULATORS = {
    Modulation.QPSK: QPSKModulator(),
    Modulation.QAM16: QAM16Modulator(),
}


def modulator_for(modulation: Modulation | str) -> Modulator:
    """The modulator implementing ``modulation`` (accepts enum or name)."""
    if isinstance(modulation, str):
        modulation = Modulation(modulation.lower())
    return _MODULATORS[modulation]


def modulation_runs(
    modulations: Sequence[Modulation],
) -> Iterable[tuple[Modulation, int]]:
    """Collapse a per-symbol plan into contiguous ``(modulation, count)`` runs.

    The batched transmitter/receiver vectorize over each run at once; an
    adaptive plan with hysteresis is almost always a handful of long runs.
    """
    run_mod: Modulation | None = None
    count = 0
    for m in modulations:
        if m is run_mod:
            count += 1
        else:
            if run_mod is not None:
                yield run_mod, count
            run_mod, count = m, 1
    if run_mod is not None:
        yield run_mod, count
