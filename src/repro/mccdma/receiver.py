"""Reference receiver and link metrics.

Not part of the paper's implementation (it builds only the transmitter),
but required to *verify* the transmitter: the receiver inverts every stage
so tests can assert bit-exact recovery on a clean channel and sane BER
behaviour under noise.
"""

from __future__ import annotations


from typing import Sequence

import numpy as np

from repro.mccdma.framing import Frame, FrameBuilder
from repro.mccdma.modulation import Modulation, modulation_runs, modulator_for
from repro.mccdma.transmitter import MCCDMAConfig, MCCDMATransmitter

__all__ = ["MCCDMAReceiver", "bit_error_rate", "error_vector_magnitude"]


def bit_error_rate(sent: np.ndarray, received: np.ndarray) -> float:
    """Fraction of differing bits (arrays must have equal size)."""
    sent = np.asarray(sent, dtype=np.uint8).reshape(-1)
    received = np.asarray(received, dtype=np.uint8).reshape(-1)
    if sent.size != received.size:
        raise ValueError(f"length mismatch: {sent.size} vs {received.size}")
    if sent.size == 0:
        return 0.0
    return float(np.mean(sent != received))


def error_vector_magnitude(ideal: np.ndarray, measured: np.ndarray) -> float:
    """RMS EVM (linear, relative to RMS ideal symbol magnitude)."""
    ideal = np.asarray(ideal, dtype=np.complex128).reshape(-1)
    measured = np.asarray(measured, dtype=np.complex128).reshape(-1)
    if ideal.size != measured.size:
        raise ValueError(f"length mismatch: {ideal.size} vs {measured.size}")
    if ideal.size == 0:
        return 0.0
    ref = np.sqrt(np.mean(np.abs(ideal) ** 2))
    if ref == 0:
        raise ValueError("ideal signal has zero power")
    return float(np.sqrt(np.mean(np.abs(measured - ideal) ** 2)) / ref)


class MCCDMAReceiver:
    """Inverts the MC-CDMA transmit chain (genie-synchronized)."""

    def __init__(self, config: MCCDMAConfig | None = None):
        self.config = config or MCCDMAConfig()
        tx = MCCDMATransmitter(self.config)
        self.spreader = tx.spreader
        self.ofdm = tx.ofdm
        self.framer = FrameBuilder(self.config.frame, self.ofdm.symbol_len)

    def estimate_gain(self, frame: Frame, samples: np.ndarray) -> complex:
        """Pilot-based flat-channel estimate (least squares over the pilots).

        Real receivers do not have the genie access of
        :meth:`~repro.mccdma.channel.RayleighChannel.equalize`; this uses
        the frame's known pilot samples instead:  ĝ = ⟨rx, pilot⟩/‖pilot‖².
        """
        n_pilot = frame.n_pilot_symbols * self.ofdm.symbol_len
        if n_pilot == 0:
            raise ValueError("frame has no pilot symbols to estimate from")
        reference = self.framer.pilot_samples()
        received = np.asarray(samples, dtype=np.complex128)[:n_pilot]
        energy = np.vdot(reference, reference)
        if energy == 0:
            raise ValueError("pilot reference has zero energy")
        return complex(np.vdot(reference, received) / energy)

    def equalize_with_pilots(self, frame: Frame, samples: np.ndarray) -> np.ndarray:
        """Correct a flat channel using the pilot-based gain estimate."""
        gain = self.estimate_gain(frame, samples)
        if gain == 0:
            raise ValueError("estimated channel gain is zero; cannot equalize")
        return np.asarray(samples, dtype=np.complex128) / gain

    def receive_frame(self, frame: Frame, samples: np.ndarray | None = None) -> np.ndarray:
        """Recover per-user bits from a frame.

        ``samples`` overrides the frame's own samples (e.g. after a channel);
        the frame still supplies the modulation plan and pilot layout.
        """
        rx = frame.samples if samples is None else np.asarray(samples, dtype=np.complex128)
        n_pilot = frame.n_pilot_symbols * self.ofdm.symbol_len
        data = rx[n_pilot:]
        per_user_bits: list[list[np.ndarray]] = [[] for _ in range(self.config.n_users)]
        offset = 0
        for modulation in frame.modulations:
            block = data[offset : offset + self.ofdm.symbol_len]
            offset += self.ofdm.symbol_len
            chips = self.ofdm.demodulate(block)
            symbols = self.spreader.despread(chips)  # (users, symbols_per_ofdm)
            demod = modulator_for(modulation)
            for u in range(self.config.n_users):
                per_user_bits[u].append(demod.demodulate(symbols[u]))
        return np.vstack([np.concatenate(chunks) for chunks in per_user_bits])

    def receive_frames(
        self, modulations: Sequence[Modulation], samples: np.ndarray
    ) -> np.ndarray:
        """Recover per-user bits from a batch of frames sharing one plan.

        ``samples`` is the ``(n_frames, n_samples)`` matrix produced by
        :meth:`~repro.mccdma.transmitter.MCCDMATransmitter.transmit_frames`
        (possibly after a channel).  The ``(n_frames, n_users, n_bits)``
        result row ``f`` is bit-identical to ``receive_frame`` on frame
        ``f``: FFT, despreading and demodulation run over the whole batch,
        grouped by contiguous same-modulation symbol runs.
        """
        rx = np.asarray(samples, dtype=np.complex128)
        if rx.ndim != 2:
            raise ValueError(f"samples must be (n_frames, n_samples), got {rx.shape}")
        modulations = list(modulations)
        n_frames = rx.shape[0]
        n_users = self.config.n_users
        sym_len = self.ofdm.symbol_len
        spm = self.config.symbols_per_ofdm
        n_pilot = self.config.frame.n_pilot_symbols * sym_len
        data = rx[:, n_pilot:]
        total_bits = sum(
            self.config.bits_per_ofdm_symbol(m) for m in modulations
        )
        out = np.empty((n_frames, n_users, total_bits), dtype=np.uint8)
        bit_off = 0
        sym_off = 0
        for modulation, count in modulation_runs(modulations):
            block = data[:, sym_off * sym_len : (sym_off + count) * sym_len]
            sym_off += count
            chips = self.ofdm.demodulate(np.ascontiguousarray(block).reshape(-1))
            # despread sees (n_frames*count*spm, L) chip rows; each row is
            # despread independently, so batching keeps rows bit-identical.
            symbols = self.spreader.despread(chips)  # (users, frames*count*spm)
            symbols = symbols.reshape(n_users, n_frames, count * spm)
            per_frame_user = symbols.transpose(1, 0, 2)  # (frames, users, run symbols)
            demod = modulator_for(modulation)
            need = self.config.bits_per_ofdm_symbol(modulation) * count
            bits = demod.demodulate(np.ascontiguousarray(per_frame_user).reshape(-1))
            out[:, :, bit_off : bit_off + need] = bits.reshape(n_frames, n_users, need)
            bit_off += need
        return out

    def symbols_of_frame(self, frame: Frame, samples: np.ndarray | None = None) -> np.ndarray:
        """Despread (pre-demodulation) symbols — used for EVM measurements."""
        rx = frame.samples if samples is None else np.asarray(samples, dtype=np.complex128)
        n_pilot = frame.n_pilot_symbols * self.ofdm.symbol_len
        data = rx[n_pilot:]
        out = []
        offset = 0
        for _ in frame.modulations:
            block = data[offset : offset + self.ofdm.symbol_len]
            offset += self.ofdm.symbol_len
            chips = self.ofdm.demodulate(block)
            out.append(self.spreader.despread(chips))
        return np.concatenate(out, axis=1)
