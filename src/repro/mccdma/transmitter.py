"""The composed MC-CDMA transmitter (the paper's Fig. 4 datapath)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.mccdma.framing import Frame, FrameBuilder, FrameConfig
from repro.mccdma.modulation import Modulation, modulation_runs, modulator_for
from repro.mccdma.ofdm import OFDMModulator
from repro.mccdma.spreading import WalshSpreader

__all__ = ["MCCDMAConfig", "MCCDMATransmitter"]


@dataclass(frozen=True)
class MCCDMAConfig:
    """Numerology of the transmitter.

    Defaults follow the 4G MC-CDMA prototype the paper builds on: 64
    subcarriers, length-16 Walsh codes (so 4 spread symbols per user per
    OFDM symbol), 16-sample cyclic prefix.
    """

    n_subcarriers: int = 64
    spread_length: int = 16
    cp_len: int = 16
    user_codes: tuple[int, ...] = (0,)
    frame: FrameConfig = field(default_factory=FrameConfig)

    def __post_init__(self) -> None:
        if self.n_subcarriers % self.spread_length:
            raise ValueError(
                f"{self.spread_length}-chip codes do not tile {self.n_subcarriers} subcarriers"
            )
        if self.frame.n_subcarriers != self.n_subcarriers:
            raise ValueError("frame config and transmitter disagree on subcarrier count")

    @property
    def n_users(self) -> int:
        return len(self.user_codes)

    @property
    def symbols_per_ofdm(self) -> int:
        """Spread (pre-spreading) symbols per user per OFDM symbol."""
        return self.n_subcarriers // self.spread_length

    def bits_per_ofdm_symbol(self, modulation: Modulation) -> int:
        """Data bits per user carried by one OFDM symbol."""
        return self.symbols_per_ofdm * modulation.bits_per_symbol


class MCCDMATransmitter:
    """Bit-exact model of the transmit datapath.

    One call to :meth:`transmit_frame` performs, per data OFDM symbol:
    modulation (QPSK or QAM-16 as selected), Walsh spreading across users,
    chip-to-subcarrier mapping, IFFT, cyclic prefix — then frames the result
    behind pilots.  This is the functional reference the generated VHDL
    implements; the simulator executes it block by block.
    """

    def __init__(self, config: MCCDMAConfig | None = None):
        self.config = config or MCCDMAConfig()
        self.spreader = WalshSpreader(self.config.spread_length, list(self.config.user_codes))
        self.ofdm = OFDMModulator(self.config.n_subcarriers, self.config.cp_len)
        self.framer = FrameBuilder(self.config.frame, self.ofdm.symbol_len)

    # -- sizing ------------------------------------------------------------------

    def frame_bits(self, modulations: Sequence[Modulation]) -> int:
        """Bits per user consumed by a frame with the given per-symbol plan."""
        if len(modulations) != self.config.frame.n_data_symbols:
            raise ValueError(
                f"plan must cover {self.config.frame.n_data_symbols} data symbols"
            )
        return sum(self.config.bits_per_ofdm_symbol(m) for m in modulations)

    # -- pipeline stages (exposed for the executive interpreter) -----------------------

    def modulate_symbol(self, bits: np.ndarray, modulation: Modulation) -> np.ndarray:
        """Bits of all users for one OFDM symbol → per-user symbol matrix."""
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        if bits.shape[0] != self.config.n_users:
            raise ValueError(f"expected {self.config.n_users} user rows, got {bits.shape[0]}")
        need = self.config.bits_per_ofdm_symbol(modulation)
        if bits.shape[1] != need:
            raise ValueError(f"expected {need} bits per user, got {bits.shape[1]}")
        mod = modulator_for(modulation)
        return np.vstack([mod.modulate(row) for row in bits])

    def spread_symbol(self, symbols: np.ndarray) -> np.ndarray:
        """Per-user symbols → superposed chips for one OFDM symbol."""
        chips = self.spreader.spread(symbols)
        if chips.size != self.config.n_subcarriers:
            raise AssertionError("chip count must equal subcarrier count")
        return chips

    def ofdm_symbol(self, chips: np.ndarray) -> np.ndarray:
        """Chips of one OFDM symbol → time-domain samples with CP."""
        return self.ofdm.modulate(chips)

    # -- whole frame --------------------------------------------------------------

    def transmit_frame(
        self, bits: np.ndarray, modulations: Sequence[Modulation]
    ) -> Frame:
        """Transmit one frame.

        ``bits`` has shape ``(n_users, frame_bits(modulations))``; the
        per-symbol modulation plan is what the ``Select`` input chose.
        """
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        total = self.frame_bits(modulations)
        if bits.shape != (self.config.n_users, total):
            raise ValueError(
                f"bits must have shape ({self.config.n_users}, {total}), got {bits.shape}"
            )
        blocks = []
        offset = 0
        for modulation in modulations:
            need = self.config.bits_per_ofdm_symbol(modulation)
            chunk = bits[:, offset : offset + need]
            offset += need
            symbols = self.modulate_symbol(chunk, modulation)
            chips = self.spread_symbol(symbols)
            blocks.append(self.ofdm_symbol(chips))
        return self.framer.build(blocks, list(modulations))

    def transmit_frames(
        self, bits: np.ndarray, modulations: Sequence[Modulation]
    ) -> np.ndarray:
        """Transmit a batch of frames sharing one modulation plan.

        ``bits`` has shape ``(n_frames, n_users, frame_bits(modulations))``;
        the result is the ``(n_frames, n_samples)`` matrix of frame samples
        (pilots included).  Row ``f`` is bit-identical to
        ``transmit_frame(bits[f], modulations).samples``: every kernel
        (modulation, spreading, IFFT, cyclic prefix) is applied to the whole
        batch at once, grouped over contiguous same-modulation symbol runs,
        but performs the same per-element arithmetic in the same order.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        modulations = list(modulations)
        total = self.frame_bits(modulations)
        n_users = self.config.n_users
        if bits.ndim != 3 or bits.shape[1:] != (n_users, total):
            raise ValueError(
                f"bits must have shape (n_frames, {n_users}, {total}), got {bits.shape}"
            )
        n_frames = bits.shape[0]
        sym_len = self.ofdm.symbol_len
        spm = self.config.symbols_per_ofdm
        data = np.empty((n_frames, len(modulations) * sym_len), dtype=np.complex128)
        bit_off = 0
        sym_off = 0
        for modulation, count in modulation_runs(modulations):
            need = self.config.bits_per_ofdm_symbol(modulation) * count
            chunk = bits[:, :, bit_off : bit_off + need]
            bit_off += need
            mod = modulator_for(modulation)
            # Per-user bit runs are contiguous, so one flat modulate call
            # covers every (frame, user, OFDM symbol) of the run.
            symbols = mod.modulate(np.ascontiguousarray(chunk).reshape(-1))
            symbols = symbols.reshape(n_frames, n_users, count * spm)
            chips = self.spreader.spread_batch(symbols)  # (frames, count*n_sub)
            blocks = self.ofdm.modulate(chips.reshape(-1)).reshape(n_frames, count * sym_len)
            data[:, sym_off * sym_len : (sym_off + count) * sym_len] = blocks
            sym_off += count
        pilots = self.framer.pilot_samples()
        samples = np.empty((n_frames, pilots.size + data.shape[1]), dtype=np.complex128)
        samples[:, : pilots.size] = pilots
        samples[:, pilots.size :] = data
        return samples
