"""Link-level evaluation of adaptive modulation.

The paper's introduction motivates runtime reconfiguration with Software
Defined Radio: the transmitter must "seamlessly switch" its physical layer
to the channel.  This module quantifies that motivation on the MC-CDMA
link: bit-error rate and spectral efficiency of fixed-QPSK, fixed-QAM-16
and SNR-adaptive transmission over a noisy channel, plus the net goodput
once the ≈4 ms reconfiguration cost of switching is charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.mccdma.adaptive import AdaptiveModulationController
from repro.mccdma.channel import AWGNChannel
from repro.mccdma.modulation import Modulation
from repro.mccdma.receiver import MCCDMAReceiver
from repro.mccdma.transmitter import MCCDMAConfig, MCCDMATransmitter

__all__ = ["LinkResult", "simulate_link", "adaptive_vs_fixed"]


@dataclass
class LinkResult:
    """Aggregate link statistics for one strategy."""

    strategy: str
    total_bits: int
    error_bits: int
    switches: int
    n_frames: int
    #: bits of frames received without any bit error (ARQ model: an errored
    #: frame is discarded and retransmitted, delivering nothing).
    delivered_bits: int = 0
    frames_ok: int = 0

    @property
    def ber(self) -> float:
        return self.error_bits / self.total_bits if self.total_bits else 0.0

    @property
    def frame_success_rate(self) -> float:
        return self.frames_ok / self.n_frames if self.n_frames else 0.0

    def bits_per_frame(self) -> float:
        return self.total_bits / self.n_frames if self.n_frames else 0.0

    def goodput_bits_per_frame(self, frame_error_weight: float = 1.0) -> float:
        """Delivered error-free bits per frame under the ARQ model.

        ``frame_error_weight`` is kept for API compatibility; the ARQ model
        already zeroes errored frames, so the weight is ignored.
        """
        return self.delivered_bits / self.n_frames if self.n_frames else 0.0


def _plan_for(
    strategy: str,
    snr_db: float,
    n_data_symbols: int,
    controller: Optional[AdaptiveModulationController],
) -> list[Modulation]:
    if strategy == "qpsk":
        return [Modulation.QPSK] * n_data_symbols
    if strategy == "qam16":
        return [Modulation.QAM16] * n_data_symbols
    if strategy == "adaptive":
        assert controller is not None
        return [controller.select(snr_db) for _ in range(n_data_symbols)]
    raise ValueError(f"unknown strategy {strategy!r}")


def simulate_link(
    strategy: str,
    snr_trace_db: Sequence[float],
    config: Optional[MCCDMAConfig] = None,
    seed: int = 0,
    threshold_db: float = 2.0,
    hysteresis_db: float = 1.0,
) -> LinkResult:
    """Transmit one frame per SNR-trace entry; returns aggregate stats.

    ``threshold_db`` is in *channel* SNR terms (the single-user despreading
    gain of 10·log10(L) dB means QAM-16 is viable well below its textbook
    Es/N0 threshold).
    """
    config = config or MCCDMAConfig()
    tx = MCCDMATransmitter(config)
    rx = MCCDMAReceiver(config)
    controller = AdaptiveModulationController(
        threshold_db=threshold_db, hysteresis_db=hysteresis_db
    )
    rng = np.random.default_rng(seed)
    total_bits = 0
    error_bits = 0
    delivered_bits = 0
    frames_ok = 0
    switches = 0
    previous: Optional[Modulation] = None
    for frame_idx, snr_db in enumerate(snr_trace_db):
        plan = _plan_for(strategy, float(snr_db), config.frame.n_data_symbols, controller)
        for modulation in plan:
            if previous is not None and modulation is not previous:
                switches += 1
            previous = modulation
        nbits = tx.frame_bits(plan)
        bits = rng.integers(0, 2, size=(config.n_users, nbits)).astype(np.uint8)
        frame = tx.transmit_frame(bits, plan)
        channel = AWGNChannel(float(snr_db), seed=seed * 10_000 + frame_idx)
        received = rx.receive_frame(frame, samples=channel.transmit(frame.samples))
        frame_errors = int(np.sum(received != bits))
        total_bits += bits.size
        error_bits += frame_errors
        if frame_errors == 0:
            delivered_bits += bits.size
            frames_ok += 1
    return LinkResult(
        strategy=strategy,
        total_bits=total_bits,
        error_bits=error_bits,
        switches=switches,
        n_frames=len(snr_trace_db),
        delivered_bits=delivered_bits,
        frames_ok=frames_ok,
    )


def adaptive_vs_fixed(
    snr_trace_db: Sequence[float],
    seed: int = 0,
    threshold_db: float = 2.0,
    hysteresis_db: float = 1.0,
) -> dict[str, LinkResult]:
    """All three strategies over the same channel realization."""
    return {
        strategy: simulate_link(
            strategy, snr_trace_db, seed=seed,
            threshold_db=threshold_db, hysteresis_db=hysteresis_db,
        )
        for strategy in ("qpsk", "qam16", "adaptive")
    }
