"""Link-level evaluation of adaptive modulation.

The paper's introduction motivates runtime reconfiguration with Software
Defined Radio: the transmitter must "seamlessly switch" its physical layer
to the channel.  This module quantifies that motivation on the MC-CDMA
link: bit-error rate and spectral efficiency of fixed-QPSK, fixed-QAM-16
and SNR-adaptive transmission over a noisy channel, plus the net goodput
once the ≈4 ms reconfiguration cost of switching is charged.

The Monte-Carlo loop itself lives in :mod:`repro.mccdma.engine`; the
functions here are thin wrappers kept for API stability.  ``batched=False``
selects the retained per-frame reference path, which the batched default
reproduces field-for-field.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.flows.observe import FlowObserver
from repro.mccdma.engine import LinkEngineConfig, LinkResult, LinkSimulationEngine
from repro.mccdma.transmitter import MCCDMAConfig

__all__ = ["LinkResult", "simulate_link", "adaptive_vs_fixed"]


def simulate_link(
    strategy: str,
    snr_trace_db: Sequence[float],
    config: Optional[MCCDMAConfig] = None,
    seed: int = 0,
    threshold_db: float = 2.0,
    hysteresis_db: float = 1.0,
    batched: bool = True,
    batch_frames: int = 64,
    observer: Optional[FlowObserver] = None,
) -> LinkResult:
    """Transmit one frame per SNR-trace entry; returns aggregate stats.

    ``threshold_db`` is in *channel* SNR terms (the single-user despreading
    gain of 10·log10(L) dB means QAM-16 is viable well below its textbook
    Es/N0 threshold).

    .. note:: **Seeding compatibility.**  Every frame now derives its data
       and noise streams from per-frame children of one
       ``np.random.SeedSequence(seed)`` (see
       :func:`repro.mccdma.engine.frame_seed_sequences`).  Earlier revisions
       drew data bits from a single shared generator and seeded the AWGN
       channel with ``seed * 10_000 + frame_idx``, which collides across
       seeds once a trace reaches 10 000 frames (seed 0's frame 10 000
       reused seed 1's frame-0 noise).  Results are therefore numerically
       different from those revisions, but remain deterministic per seed and
       identical between the ``batched`` and reference paths.
    """
    engine = LinkSimulationEngine(
        config=config,
        engine=LinkEngineConfig(batch_frames=batch_frames, batched=batched),
        observer=observer,
        threshold_db=threshold_db,
        hysteresis_db=hysteresis_db,
    )
    return engine.simulate(strategy, snr_trace_db, seed=seed)


def adaptive_vs_fixed(
    snr_trace_db: Sequence[float],
    seed: int = 0,
    threshold_db: float = 2.0,
    hysteresis_db: float = 1.0,
    batched: bool = True,
    observer: Optional[FlowObserver] = None,
) -> dict[str, LinkResult]:
    """All three strategies over the same channel realization."""
    return {
        strategy: simulate_link(
            strategy, snr_trace_db, seed=seed,
            threshold_db=threshold_db, hysteresis_db=hysteresis_db,
            batched=batched, observer=observer,
        )
        for strategy in ("qpsk", "qam16", "adaptive")
    }
