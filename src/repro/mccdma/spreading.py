"""Walsh-Hadamard spreading (the CDMA component of MC-CDMA).

Each user's symbol stream is multiplied by an orthogonal Walsh code of
length ``L``; the chips of all users superpose, and one chip per subcarrier
is transmitted (frequency-domain spreading).  Orthogonality lets the
receiver separate users with a simple correlation.

:func:`walsh_matrix` is memoized per length (the matrix is a pure function
of ``L`` and every transmitter/receiver pair used to rebuild it from
scratch); the cached array is returned read-only so the shared instance
cannot be corrupted by a caller.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["walsh_matrix", "WalshSpreader"]


@lru_cache(maxsize=None)
def _walsh_matrix_cached(length: int) -> np.ndarray:
    h = np.array([[1.0]])
    while h.shape[0] < length:
        h = np.block([[h, h], [h, -h]])
    h.setflags(write=False)
    return h


def walsh_matrix(length: int) -> np.ndarray:
    """The ``length``×``length`` Walsh-Hadamard matrix (entries ±1).

    ``length`` must be a power of two.  Built by Sylvester recursion, so
    row ``k`` is the k-th Walsh code.  The result is a cached, read-only
    array shared by every caller — copy it before mutating.
    """
    if length < 1 or length & (length - 1):
        raise ValueError(f"Walsh code length must be a power of two, got {length}")
    return _walsh_matrix_cached(length)


class WalshSpreader:
    """Spreads/despreads multi-user symbol blocks with Walsh codes."""

    def __init__(self, length: int, user_codes: list[int] | None = None):
        self.length = length
        self.matrix = walsh_matrix(length)
        if user_codes is None:
            user_codes = [0]
        if len(set(user_codes)) != len(user_codes):
            raise ValueError("user codes must be distinct")
        for c in user_codes:
            if not 0 <= c < length:
                raise ValueError(f"code index {c} outside 0..{length - 1}")
        self.user_codes = list(user_codes)
        #: The selected code rows, extracted once instead of per frame.
        self._codes = self.matrix[self.user_codes]  # (users, L)

    @property
    def n_users(self) -> int:
        return len(self.user_codes)

    def spread(self, symbols: np.ndarray) -> np.ndarray:
        """Spread per-user symbols into superposed chips.

        ``symbols`` has shape ``(n_users, n_symbols)``; the result has shape
        ``(n_symbols * length,)`` — ``length`` chips per symbol period, the
        sum over users, scaled by 1/√n_users to keep unit average power.
        """
        symbols = np.atleast_2d(np.asarray(symbols, dtype=np.complex128))
        if symbols.shape[0] != self.n_users:
            raise ValueError(
                f"expected {self.n_users} user rows, got {symbols.shape[0]}"
            )
        codes = self._codes  # (users, L)
        # chips[u, s, l] = symbols[u, s] * codes[u, l]
        chips = symbols[:, :, None] * codes[:, None, :]
        combined = chips.sum(axis=0) / np.sqrt(self.n_users)
        return combined.reshape(-1)

    def spread_batch(self, symbols: np.ndarray) -> np.ndarray:
        """Spread a ``(n_frames, n_users, n_symbols)`` block at once.

        Row ``f`` of the ``(n_frames, n_symbols * length)`` result is
        bit-identical to ``spread(symbols[f])``: the user-axis reduction
        visits the same addends in the same order, only with a leading
        frame axis.
        """
        symbols = np.asarray(symbols, dtype=np.complex128)
        if symbols.ndim != 3 or symbols.shape[1] != self.n_users:
            raise ValueError(
                f"expected (n_frames, {self.n_users}, n_symbols), got {symbols.shape}"
            )
        chips = symbols[:, :, :, None] * self._codes[None, :, None, :]
        combined = chips.sum(axis=1) / np.sqrt(self.n_users)
        return combined.reshape(symbols.shape[0], -1)

    def despread(self, chips: np.ndarray) -> np.ndarray:
        """Recover per-user symbols by correlating against each code."""
        chips = np.asarray(chips, dtype=np.complex128)
        if chips.size % self.length:
            raise ValueError(f"chip count {chips.size} not a multiple of L={self.length}")
        blocks = chips.reshape(-1, self.length)  # (n_symbols, L)
        # einsum (not BLAS matmul) so each output element is reduced in a
        # fixed order regardless of how many symbols are batched together —
        # per-frame and frame-batched despreading stay bit-identical.
        symbols = np.einsum("sl,ul->su", blocks, self._codes) / self.length
        return symbols.T * np.sqrt(self.n_users)

    def chips_per_symbol(self) -> int:
        return self.length
