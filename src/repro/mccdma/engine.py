"""Batched Monte-Carlo link-simulation engine.

The link-level results of the paper's MC-CDMA case study (BER curves,
adaptive-modulation goodput, reconfiguration-cost crossovers) all come from
frame-by-frame Monte-Carlo simulation.  :class:`LinkSimulationEngine` makes
that loop fast without changing a single output bit:

- **Batching** — frames are simulated ``batch_frames`` at a time through the
  vectorized transmitter/receiver kernels
  (:meth:`~repro.mccdma.transmitter.MCCDMATransmitter.transmit_frames` /
  :meth:`~repro.mccdma.receiver.MCCDMAReceiver.receive_frames`), grouped by
  identical modulation plans; ``batched=False`` retains the seed-path
  per-frame loop, and both paths are field-identical on every
  :class:`LinkResult`.
- **Collision-free seeding** — every frame derives a data stream and a noise
  stream from per-frame children of one :class:`numpy.random.SeedSequence`
  (:func:`frame_seed_sequences`), so distinct seeds can never share streams
  (the legacy ``seed * 10_000 + frame_idx`` scheme collided from 10k frames).
- **Early stopping** — a constant-SNR point
  (:meth:`LinkSimulationEngine.simulate_point`) can stop once the Wilson
  confidence-interval half-width on its BER estimate
  (:func:`wilson_halfwidth`) falls below a target.
- **Sharding** — :meth:`LinkSimulationEngine.sweep_points` fans SNR points
  out over the :class:`~repro.exec.engine.ParallelSweepEngine` worker pool
  (:class:`LinkPointJob` plugs into the generic job protocol of
  :func:`repro.exec.worker.run_job`), inheriting its per-job timeout, retry
  with backoff and crash isolation.
- **Observability** — every batch and every completed point emits a
  :class:`~repro.flows.observe.FlowEvent` (stages ``link:batch``,
  ``link:point``, ``link:run``), so ``--profile`` and ``--log-json`` cover
  link runs exactly as they cover design-flow runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Optional, Sequence

import numpy as np

from repro.flows.observe import FlowEvent, FlowObserver
from repro.obs import get_metrics, get_tracer
from repro.mccdma.adaptive import AdaptiveModulationController
from repro.mccdma.channel import AWGNChannel
from repro.mccdma.modulation import Modulation
from repro.mccdma.receiver import MCCDMAReceiver
from repro.mccdma.transmitter import MCCDMAConfig, MCCDMATransmitter

__all__ = [
    "LinkResult",
    "LinkEngineConfig",
    "LinkSimulationEngine",
    "LinkPointJob",
    "frame_seed_sequences",
    "wilson_halfwidth",
]


@dataclass
class LinkResult:
    """Aggregate link statistics for one strategy."""

    strategy: str
    total_bits: int
    error_bits: int
    switches: int
    n_frames: int
    #: bits of frames received without any bit error (ARQ model: an errored
    #: frame is discarded and retransmitted, delivering nothing).
    delivered_bits: int = 0
    frames_ok: int = 0

    @property
    def ber(self) -> float:
        return self.error_bits / self.total_bits if self.total_bits else 0.0

    @property
    def frame_success_rate(self) -> float:
        return self.frames_ok / self.n_frames if self.n_frames else 0.0

    def bits_per_frame(self) -> float:
        return self.total_bits / self.n_frames if self.n_frames else 0.0

    def goodput_bits_per_frame(self, frame_error_weight: float = 1.0) -> float:
        """Delivered error-free bits per frame under the ARQ model.

        ``frame_error_weight`` is kept for API compatibility; the ARQ model
        already zeroes errored frames, so the weight is ignored.
        """
        return self.delivered_bits / self.n_frames if self.n_frames else 0.0

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "total_bits": self.total_bits,
            "error_bits": self.error_bits,
            "switches": self.switches,
            "n_frames": self.n_frames,
            "delivered_bits": self.delivered_bits,
            "frames_ok": self.frames_ok,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LinkResult":
        return cls(**payload)


def frame_seed_sequences(
    seed: "int | np.random.SeedSequence", n_frames: int
) -> list[tuple[np.random.SeedSequence, np.random.SeedSequence]]:
    """Per-frame ``(data, noise)`` seed-sequence pairs from one root.

    Every frame spawns its own child of the root sequence and splits it into
    a data-bit stream and a noise stream, so streams are collision-free
    across frames *and* across seeds, and any frame can be simulated
    independently of the others (the property batching relies on).
    """
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [tuple(child.spawn(2)) for child in root.spawn(n_frames)]


def wilson_halfwidth(errors: int, n: int, z: float = 1.96) -> float:
    """Half-width of the Wilson score interval for ``errors``/``n``.

    The Wilson interval stays honest at the extreme rates Monte-Carlo BER
    estimation lives at (p̂ near 0), unlike the normal approximation.
    """
    if n <= 0:
        return float("inf")
    p = errors / n
    zz = z * z
    return (z * math.sqrt(p * (1.0 - p) / n + zz / (4.0 * n * n))) / (1.0 + zz / n)


@dataclass(frozen=True)
class LinkEngineConfig:
    """Tuning knobs of the link-simulation engine."""

    #: Frames simulated per batch (and per early-stopping check).
    batch_frames: int = 64
    #: ``False`` selects the retained per-frame seed-reference path.
    batched: bool = True
    #: Early-stop a constant-SNR point once the Wilson half-width on its BER
    #: falls below this value (``None`` disables early stopping).
    ci_halfwidth: Optional[float] = None
    #: z-score of the confidence interval (1.96 ≈ 95%).
    ci_z: float = 1.96
    #: Frames that must be simulated before early stopping may trigger.
    min_frames: int = 32

    def __post_init__(self) -> None:
        if self.batch_frames < 1:
            raise ValueError("batch_frames must be >= 1")
        if self.ci_halfwidth is not None and self.ci_halfwidth <= 0:
            raise ValueError("ci_halfwidth must be positive (or None)")
        if self.ci_z <= 0:
            raise ValueError("ci_z must be positive")
        if self.min_frames < 1:
            raise ValueError("min_frames must be >= 1")


def _plan_for(
    strategy: str,
    snr_db: float,
    n_data_symbols: int,
    controller: Optional[AdaptiveModulationController],
) -> list[Modulation]:
    if strategy == "qpsk":
        return [Modulation.QPSK] * n_data_symbols
    if strategy == "qam16":
        return [Modulation.QAM16] * n_data_symbols
    if strategy == "adaptive":
        assert controller is not None
        return [controller.select(snr_db) for _ in range(n_data_symbols)]
    raise ValueError(f"unknown strategy {strategy!r}")


@dataclass
class _Accumulator:
    """Running totals over simulated frames."""

    total_bits: int = 0
    error_bits: int = 0
    delivered_bits: int = 0
    frames_ok: int = 0
    n_frames: int = 0

    def add_frame(self, n_bits: int, n_errors: int) -> None:
        self.total_bits += n_bits
        self.error_bits += n_errors
        self.n_frames += 1
        if n_errors == 0:
            self.delivered_bits += n_bits
            self.frames_ok += 1


class LinkSimulationEngine:
    """Batched Monte-Carlo simulation of the MC-CDMA link; see module docs."""

    def __init__(
        self,
        config: Optional[MCCDMAConfig] = None,
        engine: Optional[LinkEngineConfig] = None,
        observer: Optional[FlowObserver] = None,
        threshold_db: float = 2.0,
        hysteresis_db: float = 1.0,
    ):
        self.config = config or MCCDMAConfig()
        self.engine = engine or LinkEngineConfig()
        self.observer = observer
        self.threshold_db = threshold_db
        self.hysteresis_db = hysteresis_db
        self.tx = MCCDMATransmitter(self.config)
        self.rx = MCCDMAReceiver(self.config)

    # -- events -----------------------------------------------------------------

    def _emit(self, stage: str, flow: str, wall_s: float, metrics: dict) -> None:
        if self.observer is None:
            return
        self.observer.on_event(
            FlowEvent(
                flow=flow,
                stage=stage,
                cache_hit=False,
                wall_time_s=wall_s,
                fingerprint="",
                metrics=metrics,
            )
        )

    # -- plans ------------------------------------------------------------------

    def _plans(
        self, strategy: str, trace: Sequence[float]
    ) -> tuple[list[tuple[Modulation, ...]], list[int]]:
        """Per-frame modulation plans plus the cumulative switch count.

        ``switches_after[i]`` counts modulation switches over frames
        ``0..i`` — early stopping reports the count for exactly the frames
        it simulated.
        """
        controller = AdaptiveModulationController(
            threshold_db=self.threshold_db, hysteresis_db=self.hysteresis_db
        )
        n_data = self.config.frame.n_data_symbols
        plans: list[tuple[Modulation, ...]] = []
        switches_after: list[int] = []
        switches = 0
        previous: Optional[Modulation] = None
        for snr_db in trace:
            plan = _plan_for(strategy, float(snr_db), n_data, controller)
            for modulation in plan:
                if previous is not None and modulation is not previous:
                    switches += 1
                previous = modulation
            plans.append(tuple(plan))
            switches_after.append(switches)
        return plans, switches_after

    # -- frame batches ----------------------------------------------------------

    def _run_batch_reference(self, indices, trace, plans, streams, acc) -> None:
        """The retained seed path: one frame at a time through the scalar
        kernels.  This is the bit-exactness reference for the batched path."""
        n_users = self.config.n_users
        for i in indices:
            plan = list(plans[i])
            data_ss, noise_ss = streams[i]
            nbits = self.tx.frame_bits(plan)
            bits = np.random.default_rng(data_ss).integers(
                0, 2, size=(n_users, nbits)
            ).astype(np.uint8)
            frame = self.tx.transmit_frame(bits, plan)
            channel = AWGNChannel(float(trace[i]), seed=noise_ss)
            received = self.rx.receive_frame(frame, samples=channel.transmit(frame.samples))
            acc.add_frame(bits.size, int(np.sum(received != bits)))

    def _run_batch_vectorized(self, indices, trace, plans, streams, acc) -> None:
        """Simulate a batch of frames through the vectorized kernels.

        Frames are grouped by identical modulation plan (fixed strategies
        have one group; adaptive plans collapse to a handful).  Data bits
        and AWGN keep their per-frame streams, so results are frame-order
        independent and bit-identical to the reference path.
        """
        n_users = self.config.n_users
        groups: dict[tuple[Modulation, ...], list[int]] = {}
        for i in indices:
            groups.setdefault(plans[i], []).append(i)
        frame_stats: dict[int, tuple[int, int]] = {}
        for plan, members in groups.items():
            nbits = self.tx.frame_bits(plan)
            bits = np.empty((len(members), n_users, nbits), dtype=np.uint8)
            for j, i in enumerate(members):
                bits[j] = np.random.default_rng(streams[i][0]).integers(
                    0, 2, size=(n_users, nbits)
                ).astype(np.uint8)
            clean = self.tx.transmit_frames(bits, plan)
            noisy = np.empty_like(clean)
            for j, i in enumerate(members):
                channel = AWGNChannel(float(trace[i]), seed=streams[i][1])
                noisy[j] = channel.transmit(clean[j])
            recovered = self.rx.receive_frames(plan, noisy)
            errors = (recovered != bits).reshape(len(members), -1).sum(axis=1)
            for j, i in enumerate(members):
                frame_stats[i] = (bits[j].size, int(errors[j]))
        # Accumulate in frame order so totals match the reference exactly.
        for i in indices:
            n_bits, n_errors = frame_stats[i]
            acc.add_frame(n_bits, n_errors)

    # -- public API -------------------------------------------------------------

    def simulate(
        self,
        strategy: str,
        snr_trace_db: Sequence[float],
        seed: "int | np.random.SeedSequence" = 0,
    ) -> LinkResult:
        """Transmit one frame per SNR-trace entry; returns aggregate stats."""
        return self._run(strategy, [float(s) for s in snr_trace_db], seed,
                         early_stop=False, run_stage="link:run")

    def simulate_point(
        self,
        strategy: str,
        snr_db: float,
        n_frames: int,
        seed: "int | np.random.SeedSequence" = 0,
    ) -> LinkResult:
        """One constant-SNR Monte-Carlo point, with optional early stopping.

        With ``ci_halfwidth`` configured, simulation stops at the first
        batch boundary (after ``min_frames``) where the Wilson-interval
        half-width on the BER estimate drops below the target; the returned
        ``n_frames`` is the number of frames actually simulated.  Early
        stopping applies identically to the batched and reference paths, so
        they remain field-identical.
        """
        if n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        return self._run(strategy, [float(snr_db)] * n_frames, seed,
                         early_stop=True, run_stage="link:point")

    def _run(self, strategy, trace, seed, *, early_stop, run_stage) -> LinkResult:
        cfg = self.engine
        tracer = get_tracer()
        run_span = tracer.span(f"{run_stage}:{strategy}").start()
        plans, switches_after = self._plans(strategy, trace)
        streams = frame_seed_sequences(seed, len(trace))
        acc = _Accumulator()
        flow = f"link:{strategy}"
        run_batch = (
            self._run_batch_vectorized if cfg.batched else self._run_batch_reference
        )
        started = perf_counter()
        stopped_early = False
        for start in range(0, len(trace), cfg.batch_frames):
            indices = list(range(start, min(start + cfg.batch_frames, len(trace))))
            batch_started = perf_counter()
            batch_span = tracer.span("link:batch").start() if tracer.enabled else None
            run_batch(indices, trace, plans, streams, acc)
            halfwidth = wilson_halfwidth(acc.error_bits, acc.total_bits, cfg.ci_z)
            if batch_span is not None:
                batch_span.set_attribute("frames", len(indices))
                batch_span.set_attribute("frames_done", acc.n_frames)
                batch_span.set_attribute("error_bits", acc.error_bits)
                batch_span.end()
            self._emit(
                "link:batch",
                flow,
                perf_counter() - batch_started,
                {
                    "frames": len(indices),
                    "frames_done": acc.n_frames,
                    "error_bits": acc.error_bits,
                    "ber": acc.error_bits / acc.total_bits if acc.total_bits else 0.0,
                    "ci_halfwidth": halfwidth,
                    "batched": cfg.batched,
                },
            )
            if (
                early_stop
                and cfg.ci_halfwidth is not None
                and acc.n_frames >= cfg.min_frames
                and halfwidth <= cfg.ci_halfwidth
            ):
                stopped_early = True
                break
        result = LinkResult(
            strategy=strategy,
            total_bits=acc.total_bits,
            error_bits=acc.error_bits,
            switches=switches_after[acc.n_frames - 1] if acc.n_frames else 0,
            n_frames=acc.n_frames,
            delivered_bits=acc.delivered_bits,
            frames_ok=acc.frames_ok,
        )
        self._emit(
            run_stage,
            flow,
            perf_counter() - started,
            {
                "frames": result.n_frames,
                "frames_requested": len(trace),
                "ber": result.ber,
                "switches": result.switches,
                "early_stopped": stopped_early,
                "batched": cfg.batched,
            },
        )
        if tracer.enabled:
            run_span.set_attribute("strategy", strategy)
            run_span.set_attribute("frames", result.n_frames)
            run_span.set_attribute("ber", result.ber)
            run_span.set_attribute("switches", result.switches)
            run_span.set_attribute("early_stopped", stopped_early)
            registry = get_metrics()
            registry.counter("link.frames_total").inc(result.n_frames)
            registry.counter("link.error_bits_total").inc(result.error_bits)
        run_span.end()
        return result

    # -- multi-process SNR sweeps ------------------------------------------------

    def sweep_points(
        self,
        strategy: str,
        snr_points_db: Sequence[float],
        n_frames: int,
        seed: int = 0,
        jobs: int = 0,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        backoff_s: float = 0.05,
        pool=None,
    ) -> list[LinkResult]:
        """Simulate one constant-SNR point per entry, pulled by workers.

        ``jobs=0`` runs serially in-process through the very same
        :class:`LinkPointJob` code path the workers execute, so serial and
        parallel sweeps are field-identical; ``jobs>=1`` reuses the
        :class:`~repro.exec.engine.ParallelSweepEngine` scheduler (per-job
        timeout, bounded retry with exponential backoff, crash isolation).
        Pass ``pool=`` (a warm :class:`~repro.exec.pool.WorkerPool`) to
        amortize worker spawn + import across many sweeps — the CLI shares
        one pool across all ``--strategy`` curves this way.  Point ``i``
        derives its frame streams from ``SeedSequence(seed, spawn_key=(i,))``
        regardless of sharding.
        """
        from repro.exec.engine import ParallelSweepEngine

        point_jobs = [
            LinkPointJob(
                job_id=f"p{i:03d}@snr{float(snr_db):+.2f}",
                strategy=strategy,
                snr_db=float(snr_db),
                n_frames=n_frames,
                seed_entropy=seed,
                point_index=i,
                config=self.config,
                engine=self.engine,
                threshold_db=self.threshold_db,
                hysteresis_db=self.hysteresis_db,
            )
            for i, snr_db in enumerate(snr_points_db)
        ]
        sweep = ParallelSweepEngine(
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            observer=self.observer,
            sweep_name=f"linklevel:{strategy}",
            pool=pool,
        )
        try:
            report = sweep.run(point_jobs)
        finally:
            if pool is None:
                sweep.close()
        if report.failed:
            detail = "; ".join(f"{r.job_id}: {r.error}" for r in report.failed)
            raise RuntimeError(f"link sweep failed for {len(report.failed)} point(s): {detail}")
        return [LinkResult.from_dict(r.payload["result"]) for r in report.results]


@dataclass(frozen=True)
class LinkPointJob:
    """One picklable constant-SNR link-simulation point.

    Plugs into the generic job protocol of :func:`repro.exec.worker.run_job`
    (anything with a ``job_id`` and an ``execute`` method), so the link
    engine inherits the sweep engine's scheduling, retry and observability
    for free.
    """

    job_id: str
    strategy: str
    snr_db: float
    n_frames: int
    seed_entropy: int
    point_index: int
    config: MCCDMAConfig
    engine: LinkEngineConfig
    threshold_db: float = 2.0
    hysteresis_db: float = 1.0
    #: Fault-injection hook honoured by :func:`repro.exec.worker.run_job`.
    fault: Optional[str] = None

    def execute(
        self, attempt: int = 1, cache: Any = None, observer: Optional[FlowObserver] = None
    ) -> dict[str, Any]:
        engine = LinkSimulationEngine(
            config=self.config,
            engine=self.engine,
            observer=observer,
            threshold_db=self.threshold_db,
            hysteresis_db=self.hysteresis_db,
        )
        seed = np.random.SeedSequence(self.seed_entropy, spawn_key=(self.point_index,))
        result = engine.simulate_point(self.strategy, self.snr_db, self.n_frames, seed=seed)
        return {
            "job_id": self.job_id,
            "strategy": self.strategy,
            "snr_db": self.snr_db,
            "n_frames_requested": self.n_frames,
            "early_stopped": result.n_frames < self.n_frames,
            "result": result.to_dict(),
        }
