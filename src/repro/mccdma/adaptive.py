"""SNR-driven adaptive modulation — the source of the ``Select`` signal.

"This adaptive modulation is selected by the conditional entry Select which
defines the modulation of each OFDM symbol according to the signal to noise
ratio."  The DSP runs this controller and writes the selection through
``Interface IN_OUT``; every change triggers a reconfiguration request for
the dynamic modulation block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mccdma.modulation import Modulation

__all__ = ["AdaptiveModulationController", "SnrTrace"]


@dataclass
class AdaptiveModulationController:
    """Threshold policy with hysteresis.

    Above ``threshold_db`` the channel supports QAM-16; below, fall back to
    QPSK.  ``hysteresis_db`` prevents reconfiguration thrashing when the SNR
    hovers around the threshold — switches cost ≈4 ms of reconfiguration, so
    the controller trades a little spectral efficiency for stability.
    """

    threshold_db: float = 14.0
    hysteresis_db: float = 1.0
    initial: Modulation = Modulation.QPSK

    def __post_init__(self) -> None:
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis must be >= 0")
        self._current = self.initial

    @property
    def current(self) -> Modulation:
        return self._current

    def select(self, snr_db: float) -> Modulation:
        """Choose the modulation for the next OFDM symbol."""
        if self._current is Modulation.QPSK:
            if snr_db >= self.threshold_db + self.hysteresis_db:
                self._current = Modulation.QAM16
        else:
            if snr_db <= self.threshold_db - self.hysteresis_db:
                self._current = Modulation.QPSK
        return self._current

    def plan(self, snrs_db: Sequence[float]) -> list[Modulation]:
        """The modulation sequence for a whole SNR trace."""
        return [self.select(s) for s in snrs_db]

    @staticmethod
    def switch_count(plan: Sequence[Modulation]) -> int:
        """Number of reconfigurations a plan implies."""
        return sum(1 for a, b in zip(plan, plan[1:]) if a is not b)


class SnrTrace:
    """Deterministic SNR trace generators (per OFDM symbol)."""

    @staticmethod
    def constant(value_db: float, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("length must be >= 0")
        return np.full(n, value_db, dtype=float)

    @staticmethod
    def step(low_db: float, high_db: float, period: int, n: int) -> np.ndarray:
        """Alternating low/high blocks of ``period`` symbols."""
        if period < 1:
            raise ValueError("period must be >= 1")
        idx = (np.arange(n) // period) % 2
        return np.where(idx == 0, low_db, high_db).astype(float)

    @staticmethod
    def random_walk(
        start_db: float, step_db: float, n: int, seed: int = 0,
        low_clip: float = -5.0, high_clip: float = 35.0,
    ) -> np.ndarray:
        """A clipped random walk — a slowly varying mobile channel."""
        rng = np.random.default_rng(seed)
        steps = rng.normal(0.0, step_db, size=n)
        walk = start_db + np.cumsum(steps)
        return np.clip(walk, low_clip, high_clip)

    @staticmethod
    def sinusoid(mean_db: float, amplitude_db: float, period: int, n: int) -> np.ndarray:
        """Periodic fading envelope (vehicular shadowing)."""
        if period < 1:
            raise ValueError("period must be >= 1")
        t = np.arange(n)
        return mean_db + amplitude_db * np.sin(2.0 * np.pi * t / period)
