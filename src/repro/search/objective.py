"""Deterministic cost evaluation of candidate states.

One :meth:`CostEvaluator.evaluate` call prices a :class:`SearchState` by
actually running the decision stack it encodes:

1. **floorplan** — the state's column spans become a
   :class:`~repro.fabric.floorplan.Floorplan`; structural violations
   (overlaps, degenerate spans), capacity shortfalls against each region's
   worst-case variant, and bus-macro infeasibility become *graded*
   penalties, so the annealer can walk through slightly-infeasible states
   instead of bouncing off a cliff;
2. **latency** — each region's partial-bitstream size (heterogeneous
   BRAM/multiplier columns inside the span included, per the device's
   frame model) runs through the reconfiguration architecture's analytic
   latency estimate;
3. **scheduling** — the incremental
   :class:`~repro.aaa.recon_aware.ReconfigAwareScheduler` re-schedules the
   graph with the state's pins and latencies (the fast re-evaluation PR 3
   built is exactly what makes this inner loop affordable);
4. **boundary** — every region boundary is priced with
   :func:`repro.fabric.busmacro.boundary_cost` (monotone in crossing bits,
   heterogeneous-column premium).

The total is a weighted sum in nanoseconds.  Evaluations are pure functions
of ``(space, architecture, weights, state)`` and are memoized two ways: a
per-evaluator dict, and — when a content-addressed
:class:`~repro.flows.pipeline.ArtifactCache` is supplied — a shared tier
keyed by fingerprint, so repeat evaluations across searches (or across
processes via the disk tier) are free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aaa.adequation import adequate
from repro.aaa.mapping import MappingConstraints
from repro.aaa.recon_aware import ReconfigAwareScheduler
from repro.arch.boards import Board, sundance_board
from repro.fabric.busmacro import BusMacroError, boundary_cost, macros_needed
from repro.flows.pipeline import ArtifactCache, fingerprint, fingerprint_graph, fingerprint_library
from repro.reconfig.architectures import ReconfigArchitecture, case_a_standalone
from repro.search.space import SearchSpace, SearchState

__all__ = ["CostWeights", "CostBreakdown", "CostEvaluator"]

#: Normalizer for graded overlap penalties (columns of overlap per unit).
WIDTHS_NORM = 4.0


@dataclass(frozen=True)
class CostWeights:
    """Weights of the combined objective (everything in nanoseconds)."""

    #: Iteration period of the refined schedule.
    makespan: float = 1.0
    #: Total reconfiguration busy time — prices configuration-port pressure
    #: even when prefetching hides it from the critical path.
    reconfig_busy: float = 0.25
    #: Bus-macro bridge cost per region boundary.
    boundary: float = 1.0
    #: Penalty per violation unit (structural violation = 1 unit, capacity
    #: shortfall and span overlap scale fractionally).  Dominates every
    #: legitimate makespan so infeasible states always lose to feasible ones.
    penalty_unit_ns: float = 50e6

    def key(self) -> tuple:
        return (self.makespan, self.reconfig_busy, self.boundary, self.penalty_unit_ns)


@dataclass(frozen=True)
class CostBreakdown:
    """Priced account of one state (the objective's full output)."""

    state_key: str
    total_ns: float
    makespan_ns: int
    reconfig_busy_ns: int
    boundary_cost_ns: int
    penalty_ns: float
    penalty_units: float
    violations: tuple[str, ...]
    n_regions: int
    n_reconfigs: int

    @property
    def feasible(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "state": self.state_key,
            "total_ns": self.total_ns,
            "makespan_ns": self.makespan_ns,
            "reconfig_busy_ns": self.reconfig_busy_ns,
            "boundary_cost_ns": self.boundary_cost_ns,
            "penalty_ns": self.penalty_ns,
            "feasible": self.feasible,
            "violations": list(self.violations),
            "n_regions": self.n_regions,
            "n_reconfigs": self.n_reconfigs,
        }


@dataclass
class EvaluatorStats:
    """Evaluation accounting (mirrors the scheduler-stats idiom)."""

    requested: int = 0
    computed: int = 0
    memo_hits: int = 0
    cache_hits: int = 0

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "computed": self.computed,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
        }


class CostEvaluator:
    """Memoizing objective over one :class:`SearchSpace`."""

    def __init__(
        self,
        space: SearchSpace,
        architecture: Optional[ReconfigArchitecture] = None,
        weights: CostWeights = CostWeights(),
        cache: Optional[ArtifactCache] = None,
    ):
        self.space = space
        self.architecture = architecture or case_a_standalone()
        self.weights = weights
        self.cache = cache
        self.stats = EvaluatorStats()
        self._memo: dict[str, CostBreakdown] = {}
        self._boards: dict[int, Board] = {}
        self._latency_by_span: dict[tuple[int, int], int] = {}
        self._space_fp = fingerprint(
            "search_space",
            fingerprint_graph(space.graph),
            fingerprint_library(space.library),
            space.device.name,
            space.margin,
            space.max_regions,
        )

    # -- plumbing ----------------------------------------------------------------

    def _board_for(self, n_regions: int) -> Board:
        board = self._boards.get(n_regions)
        if board is None:
            board = sundance_board(n_dynamic=n_regions, device=self.space.device)
            self._boards[n_regions] = board
        return board

    def _span_latency_ns(self, col0: int, width: int) -> int:
        key = (col0, width)
        latency = self._latency_by_span.get(key)
        if latency is None:
            nbytes = self.space.device.partial_bitstream_bytes(col0, width)
            latency = self.architecture.estimate_latency_ns(nbytes)
            self._latency_by_span[key] = latency
        return latency

    def cache_key(self, state: SearchState) -> str:
        return fingerprint(
            "search_eval",
            self._space_fp,
            self.architecture.name,
            self.weights.key(),
            state.key(),
        )

    # -- the objective -----------------------------------------------------------

    def evaluate(self, state: SearchState) -> CostBreakdown:
        self.stats.requested += 1
        memo_key = state.key()
        hit = self._memo.get(memo_key)
        if hit is not None:
            self.stats.memo_hits += 1
            return hit
        if self.cache is not None:
            cached = self.cache.get(self.cache_key(state))
            if isinstance(cached, CostBreakdown):
                self.stats.cache_hits += 1
                self._memo[memo_key] = cached
                return cached
        breakdown = self._compute(state)
        self.stats.computed += 1
        if self.cache is not None:
            breakdown = self.cache.put(self.cache_key(state), breakdown)
        self._memo[memo_key] = breakdown
        return breakdown

    def _compute(self, state: SearchState) -> CostBreakdown:
        space, device = self.space, self.space.device
        violations: list[str] = []
        penalty_units = 0.0

        # 1. Floorplan structure (zero-width / step / bounds / overlaps).
        plan = space.floorplan_of(state)
        structural = plan.violations()
        violations.extend(structural)
        penalty_units += float(len(structural))
        overlap_cols = self._overlap_columns(state)
        if overlap_cols:
            # Graded on top of the pairwise-overlap violation: wider
            # overlaps are worse than a one-column graze.
            penalty_units += overlap_cols / WIDTHS_NORM

        # 2. Capacity and boundary per region.
        reconfig_ns: dict[str, int] = {}
        boundary_ns = 0
        for region in range(state.n_regions):
            name = space.region_name(region)
            col0, width = state.placements[region]
            span_ok = width > 0 and 0 <= col0 and col0 + width <= device.clb_cols
            if span_ok:
                need = space.region_need(state, region)
                cap = device.column_span_capacity(col0, width)
                shortfall = self._shortfall(need, cap)
                if shortfall > 0.0:
                    violations.append(
                        f"region {name}: variants exceed span capacity by {shortfall:.0%}"
                    )
                    penalty_units += 1.0 + shortfall
                reconfig_ns[name] = self._span_latency_ns(col0, width)
                boundary_ns += self._boundary_ns(state, region, violations=violations)
            else:
                # Degenerate span: price a full-device reconfiguration and
                # let the structural violation carry the penalty.
                reconfig_ns[name] = self.architecture.estimate_latency_ns(
                    -(-device.full_bitstream_bits // 8)
                )

        # 3. Scheduling with the state's pins and floorplan-derived latencies.
        board = self._board_for(state.n_regions)
        constraints = MappingConstraints()
        for op_idx, region in enumerate(state.assign):
            constraints.pin(space.movable_ops[op_idx], space.region_name(region))
        result = adequate(
            space.graph,
            board.architecture,
            space.library,
            constraints=constraints,
            scheduler=ReconfigAwareScheduler,
            reconfig_ns=reconfig_ns,
            validate=False,
        )
        makespan_ns = result.makespan_ns
        reconfigs = result.schedule.reconfigs
        reconfig_busy_ns = sum(r.duration for r in reconfigs)

        w = self.weights
        penalty_ns = w.penalty_unit_ns * penalty_units
        total = (
            w.makespan * makespan_ns
            + w.reconfig_busy * reconfig_busy_ns
            + w.boundary * boundary_ns
            + penalty_ns
        )
        return CostBreakdown(
            state_key=state.key(),
            total_ns=total,
            makespan_ns=makespan_ns,
            reconfig_busy_ns=reconfig_busy_ns,
            boundary_cost_ns=boundary_ns,
            penalty_ns=penalty_ns,
            penalty_units=penalty_units,
            violations=tuple(violations),
            n_regions=state.n_regions,
            n_reconfigs=len(reconfigs),
        )

    # -- pieces ------------------------------------------------------------------

    def _boundary_ns(self, state: SearchState, region: int, violations: list[str]) -> int:
        space, device = self.space, self.space.device
        col0, width = state.placements[region]
        bits_in, bits_out = space.region_boundary_bits(state, region)
        if col0 > 0:
            column = col0
        elif col0 + width < device.clb_cols:
            column = col0 + width
        else:
            violations.append(
                f"region {space.region_name(region)} covers the whole device; no static boundary"
            )
            return 0
        try:
            cost = boundary_cost(device, column, bits_in, bits_out)
        except BusMacroError as err:
            violations.append(str(err))
            return 0
        if macros_needed(bits_in) + macros_needed(bits_out) > device.clb_rows:
            violations.append(
                f"region {space.region_name(region)}: {cost.macros} bus macros exceed "
                f"device height {device.clb_rows}"
            )
        return cost.cost_ns

    def _overlap_columns(self, state: SearchState) -> int:
        total = 0
        spans = state.placements
        for i in range(len(spans)):
            c0, w0 = spans[i]
            for j in range(i + 1, len(spans)):
                c1, w1 = spans[j]
                total += max(0, min(c0 + w0, c1 + w1) - max(c0, c1))
        return total

    @staticmethod
    def _shortfall(need, cap) -> float:
        """Worst fractional overflow of ``need`` over ``cap`` (0.0 = fits)."""
        worst = 0.0
        for field_name, value in need.as_dict().items():
            have = getattr(cap, field_name)
            if value > have:
                worst = max(worst, (value - have) / max(1, value))
        return worst
