"""Integrated partitioning + scheduling + floorplanning co-optimization.

The paper fixes three decisions before its flow ever runs: which conditioned
operations share a dynamic region (*partitioning*), how many regions the
fabric carves (*region count*), and where each region's column span sits
(*floorplanning*) — then schedules around them.  Chen et al. (1803.03748)
and Ding et al. (2212.05397) show these layers must be co-optimized on
heterogeneous fabrics.  This package makes the combined space searchable:

- :mod:`repro.search.space` — :class:`SearchState` encodes one candidate
  (assignment of conditioned operations to regions + per-region column
  spans) hashably and canonically; :class:`SearchSpace` generates seeded
  moves spanning all three layers (reassign / split / merge regions,
  shift / resize / swap column spans).
- :mod:`repro.search.objective` — :class:`CostEvaluator` prices a state by
  re-running the incremental reconfiguration-aware scheduler (the fast
  inner-loop evaluator PR 3 built) with floorplan-derived latencies, plus
  bus-macro boundary costs and graded feasibility penalties; evaluations
  are memoized through the flow pipeline's content-addressed
  :class:`~repro.flows.pipeline.ArtifactCache`.
- :mod:`repro.search.anneal` — a seeded simulated annealer plus greedy
  (random-restart hill-climbing) and pure random baselines, all drawing
  randomness from one :class:`numpy.random.SeedSequence` so equal seeds
  produce identical trajectories; progress emits ``repro.obs``
  spans/metrics and a per-iteration best-so-far trajectory.
- :mod:`repro.search.parallel` — restart sharding: each global restart
  becomes one picklable :class:`SearchRestartJob` on the parallel sweep
  engine's warm worker pool, merged deterministically (``jobs=0`` and
  ``jobs=N`` digests match).

High-level entry points live in :func:`repro.flows.designspace.search_multiregion`
and the ``repro search`` CLI subcommand.
"""

from repro.search.space import SearchSpace, SearchState, MOVE_KINDS
from repro.search.objective import CostBreakdown, CostEvaluator, CostWeights
from repro.search.anneal import (
    SEARCH_METHODS,
    SearchConfig,
    SearchResult,
    anneal,
    greedy,
    random_search,
    run_search,
)
from repro.search.parallel import (
    SearchRestartJob,
    merge_shard_results,
    run_search_sharded,
    shard_configs,
)

__all__ = [
    "SearchSpace",
    "SearchState",
    "MOVE_KINDS",
    "CostBreakdown",
    "CostEvaluator",
    "CostWeights",
    "SEARCH_METHODS",
    "SearchConfig",
    "SearchResult",
    "anneal",
    "greedy",
    "random_search",
    "run_search",
    "SearchRestartJob",
    "run_search_sharded",
    "shard_configs",
    "merge_shard_results",
]
