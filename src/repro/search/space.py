"""State encoding and move generation for the co-optimization search.

A :class:`SearchState` fixes the three decision layers the paper treats as
inputs:

- **partitioning** — ``assign[i]`` maps the i-th movable operation (the
  graph's conditioned operations, in sorted name order) to a dynamic
  region index;
- **region count** — ``len(placements)`` regions are carved;
- **floorplanning** — ``placements[j] = (col0, width)`` pins region ``j``
  to a full-height CLB-column span of the device.

States are canonical (region indices renumbered by first appearance in the
assignment) and hashable, so the objective layer can memoize repeat
evaluations through the content-addressed artifact cache.  Moves keep the
*per-region* geometry hard-legal (width ≥ the 4-slice minimum, multiple of
4 slices, inside the device) but allow region spans to overlap and regions
to overflow their capacity — those show up as graded penalties in the
objective, which gives the annealer a smooth landscape instead of a wall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.device import VirtexIIDevice, XC2V2000
from repro.fabric.floorplan import MIN_WIDTH_CLB, WIDTH_STEP_CLB, Floorplan, ModulePlacement
from repro.fabric.resources import ResourceVector
from repro.fabric.synthesis import Synthesizer

__all__ = ["SearchState", "SearchSpace", "MOVE_KINDS"]

#: The move vocabulary, spanning all three decision layers.
MOVE_KINDS = ("reassign", "split", "merge", "shift", "resize", "swap")


@dataclass(frozen=True)
class SearchState:
    """One candidate point of the joint space (canonical, hashable)."""

    #: Per movable operation (sorted name order): region index.
    assign: tuple[int, ...]
    #: Per region index: (col0, width) in CLB columns, full height.
    placements: tuple[tuple[int, int], ...]

    @property
    def n_regions(self) -> int:
        return len(self.placements)

    def key(self) -> str:
        """Stable string encoding — the cache/digest identity of the state."""
        assign = ",".join(map(str, self.assign))
        spans = ";".join(f"{c}+{w}" for c, w in self.placements)
        return f"k{self.n_regions}|a[{assign}]|p[{spans}]"

    def region_ops(self) -> list[list[int]]:
        """Movable-op indices per region."""
        members: list[list[int]] = [[] for _ in range(self.n_regions)]
        for op_idx, region in enumerate(self.assign):
            members[region].append(op_idx)
        return members

    def __str__(self) -> str:
        return self.key()


class SearchSpace:
    """Move generator and geometry bookkeeping over one (graph, device) pair.

    ``margin`` oversizes each region's resource requirement the same way the
    Modular-Design back-end does (reconfigurable regions target ≈50 %
    utilization at the default 2.0 there); the search default is looser so
    narrow-but-feasible spans stay reachable and the capacity/width
    trade-off is part of the landscape.
    """

    def __init__(
        self,
        graph: AlgorithmGraph,
        library: OperationLibrary,
        device: VirtexIIDevice = XC2V2000,
        max_regions: Optional[int] = None,
        margin: float = 1.25,
    ):
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        self.graph = graph
        self.library = library
        self.device = device
        self.margin = margin
        self.movable_ops: tuple[str, ...] = tuple(
            sorted(op.name for op in graph.operations if op.is_conditioned)
        )
        if not self.movable_ops:
            raise ValueError(
                f"graph {graph.name!r} has no conditioned operations; nothing to partition"
            )
        self.max_regions = max_regions if max_regions is not None else min(len(self.movable_ops), 4)
        if self.max_regions < 1:
            raise ValueError("max_regions must be >= 1")

        synthesizer = Synthesizer(library)
        self._op_need: dict[str, ResourceVector] = {}
        self._op_bits: dict[str, tuple[int, int]] = {}
        for name in self.movable_ops:
            op = graph.operation(name)
            module, _ = synthesizer.synthesize_module(
                f"search_{name}", [op], ports=[], reconfigurable=True, region="_probe"
            )
            self._op_need[name] = module.resources.scaled(margin)
            # Boundary crossings are *wires*, so count port widths (one
            # token's bits), not per-iteration data volume.
            bits_in = sum(e.dst.port(e.dst_port).dtype.bits for e in graph.in_edges(op))
            bits_out = sum(e.src.port(e.src_port).dtype.bits for e in graph.out_edges(op))
            self._op_bits[name] = (bits_in, bits_out)

    # -- derived per-state quantities --------------------------------------------

    def region_need(self, state: SearchState, region: int) -> ResourceVector:
        """Worst-case variant requirement of ``region`` (margin applied)."""
        worst = ResourceVector()
        for op_idx in state.region_ops()[region]:
            need = self._op_need[self.movable_ops[op_idx]]
            worst = ResourceVector(
                **{k: max(getattr(worst, k), getattr(need, k)) for k in need.as_dict()}
            )
        return worst

    def region_boundary_bits(self, state: SearchState, region: int) -> tuple[int, int]:
        """Worst-case (bits_in, bits_out) crossing the region's boundary."""
        bits_in = bits_out = 0
        for op_idx in state.region_ops()[region]:
            i, o = self._op_bits[self.movable_ops[op_idx]]
            bits_in = max(bits_in, i)
            bits_out = max(bits_out, o)
        return bits_in, bits_out

    def floorplan_of(self, state: SearchState) -> Floorplan:
        """The state's floorplan with placements injected verbatim.

        Deliberately bypasses :meth:`Floorplan.place` — candidate states may
        overlap or be degenerate; :meth:`Floorplan.violations` and the
        objective's penalties judge them.
        """
        plan = Floorplan(self.device)
        for region, (col0, width) in enumerate(state.placements):
            name = self.region_name(region)
            plan.placements[name] = ModulePlacement(name, col0, width)
        return plan

    @staticmethod
    def region_name(region: int) -> str:
        """Region index -> board/operator region name (``D1``-based)."""
        return f"D{region + 1}"

    # -- state construction ------------------------------------------------------

    def canonical(self, assign: Sequence[int], placements: Sequence[tuple[int, int]]) -> SearchState:
        """Renumber regions by first appearance; drop unused placements."""
        remap: dict[int, int] = {}
        for region in assign:
            if region not in remap:
                remap[region] = len(remap)
        return SearchState(
            assign=tuple(remap[r] for r in assign),
            placements=tuple(tuple(placements[old]) for old in sorted(remap, key=remap.get)),
        )

    def initial_state(self, n_regions: Optional[int] = None) -> SearchState:
        """The deterministic fixed-sweep point for ``n_regions`` regions.

        Partitioning follows the paper's idiom — alternatives of the same
        condition group share a region, groups round-robin over regions —
        and each span packs against the right device edge at the narrowest
        width whose capacity fits the region's worst-case variant, exactly
        the :class:`~repro.fabric.floorplan.Floorplanner` layout.
        """
        k = n_regions if n_regions is not None else min(
            len(self.graph.condition_groups), self.max_regions
        )
        if not 1 <= k <= self.max_regions:
            raise ValueError(f"n_regions must be in 1..{self.max_regions}, got {k}")
        groups = sorted(self.graph.condition_groups)
        group_region = {g: i % k for i, g in enumerate(groups)}
        assign = tuple(
            group_region[self.graph.operation(name).condition.group] for name in self.movable_ops
        )
        state = self.canonical(assign, [(0, MIN_WIDTH_CLB)] * k)
        placements: list[tuple[int, int]] = [None] * state.n_regions
        next_end = self.device.clb_cols
        for region in range(state.n_regions):
            need = self.region_need(state, region)
            col0, width = self._pack_fit(need, next_end)
            placements[region] = (col0, width)
            next_end = col0
        return SearchState(assign=state.assign, placements=tuple(placements))

    def _pack_fit(self, need: ResourceVector, right_edge: int) -> tuple[int, int]:
        """Narrowest span ending at/left-of ``right_edge`` fitting ``need``;
        falls back to the widest span that still fits the device."""
        width = MIN_WIDTH_CLB
        while width <= right_edge:
            for col0 in range(right_edge - width, -1, -1):
                if need.fits_in(self.device.column_span_capacity(col0, width)):
                    return col0, width
            width += WIDTH_STEP_CLB
        # Nothing fits: park a minimum-width span at the edge and let the
        # capacity penalty price the shortfall.
        col0 = max(0, right_edge - MIN_WIDTH_CLB)
        return col0, MIN_WIDTH_CLB

    def random_state(self, rng: np.random.Generator) -> SearchState:
        """A uniformly-seeded state: random partition, random legal spans."""
        k = int(rng.integers(1, self.max_regions + 1))
        assign = [int(rng.integers(0, k)) for _ in self.movable_ops]
        # Every region index must be used, else canonicalization shrinks k.
        for region in range(k):
            if region not in assign:
                assign[int(rng.integers(0, len(assign)))] = region
        placements = [self._random_span(rng) for _ in range(k)]
        return self.canonical(assign, placements)

    def _random_span(self, rng: np.random.Generator) -> tuple[int, int]:
        max_steps = self.device.clb_cols // WIDTH_STEP_CLB
        width = WIDTH_STEP_CLB * int(rng.integers(1, min(max_steps, 6) + 1))
        width = max(width, MIN_WIDTH_CLB)
        col0 = int(rng.integers(0, self.device.clb_cols - width + 1))
        return col0, width

    # -- moves -------------------------------------------------------------------

    def neighbor(self, state: SearchState, rng: np.random.Generator) -> SearchState:
        """One random move; always returns a state different from ``state``
        (falls back through move kinds when the drawn one is inapplicable)."""
        order = list(rng.permutation(len(MOVE_KINDS)))
        for idx in order:
            moved = self._apply_move(MOVE_KINDS[idx], state, rng)
            if moved is not None and moved != state:
                return moved
        return state  # fully stuck (single op, single span device) — caller's budget handles it

    def _apply_move(
        self, kind: str, state: SearchState, rng: np.random.Generator
    ) -> Optional[SearchState]:
        if kind == "reassign":
            return self._move_reassign(state, rng)
        if kind == "split":
            return self._move_split(state, rng)
        if kind == "merge":
            return self._move_merge(state, rng)
        if kind == "shift":
            return self._move_shift(state, rng)
        if kind == "resize":
            return self._move_resize(state, rng)
        if kind == "swap":
            return self._move_swap(state, rng)
        raise ValueError(f"unknown move kind {kind!r}")

    def _move_reassign(self, state: SearchState, rng) -> Optional[SearchState]:
        """Partition layer: move one operation to another existing region."""
        if state.n_regions < 2:
            return None
        candidates = [
            i for i, r in enumerate(state.assign) if len(state.region_ops()[r]) > 1
        ]
        if not candidates:
            return None
        op_idx = candidates[int(rng.integers(0, len(candidates)))]
        current = state.assign[op_idx]
        others = [r for r in range(state.n_regions) if r != current]
        target = others[int(rng.integers(0, len(others)))]
        assign = list(state.assign)
        assign[op_idx] = target
        return self.canonical(assign, state.placements)

    def _move_split(self, state: SearchState, rng) -> Optional[SearchState]:
        """Partition layer: carve a new region for one operation."""
        if state.n_regions >= self.max_regions:
            return None
        crowded = [
            i for i, r in enumerate(state.assign) if len(state.region_ops()[r]) > 1
        ]
        if not crowded:
            return None
        op_idx = crowded[int(rng.integers(0, len(crowded)))]
        assign = list(state.assign)
        assign[op_idx] = state.n_regions
        placements = list(state.placements) + [self._free_span(state, rng)]
        return self.canonical(assign, placements)

    def _free_span(self, state: SearchState, rng) -> tuple[int, int]:
        """A minimum-width span avoiding existing placements when possible."""
        taken = set()
        for col0, width in state.placements:
            taken.update(range(col0, col0 + width))
        starts = [
            c for c in range(0, self.device.clb_cols - MIN_WIDTH_CLB + 1)
            if not taken.intersection(range(c, c + MIN_WIDTH_CLB))
        ]
        if starts:
            return starts[int(rng.integers(0, len(starts)))], MIN_WIDTH_CLB
        return self._random_span(rng)

    def _move_merge(self, state: SearchState, rng) -> Optional[SearchState]:
        """Partition layer: dissolve one region into another."""
        if state.n_regions < 2:
            return None
        victim = int(rng.integers(0, state.n_regions))
        others = [r for r in range(state.n_regions) if r != victim]
        target = others[int(rng.integers(0, len(others)))]
        assign = [target if r == victim else r for r in state.assign]
        return self.canonical(assign, state.placements)

    def _move_shift(self, state: SearchState, rng) -> Optional[SearchState]:
        """Floorplan layer: slide one span by one width step."""
        region = int(rng.integers(0, state.n_regions))
        col0, width = state.placements[region]
        delta = WIDTH_STEP_CLB if rng.integers(0, 2) else -WIDTH_STEP_CLB
        new_col0 = col0 + delta
        if new_col0 < 0 or new_col0 + width > self.device.clb_cols:
            new_col0 = col0 - delta
        if new_col0 < 0 or new_col0 + width > self.device.clb_cols or new_col0 == col0:
            return None
        placements = list(state.placements)
        placements[region] = (new_col0, width)
        return SearchState(assign=state.assign, placements=tuple(placements))

    def _move_resize(self, state: SearchState, rng) -> Optional[SearchState]:
        """Floorplan layer: grow or shrink one span by one width step."""
        region = int(rng.integers(0, state.n_regions))
        col0, width = state.placements[region]
        grow = bool(rng.integers(0, 2))
        new_width = width + (WIDTH_STEP_CLB if grow else -WIDTH_STEP_CLB)
        if new_width < MIN_WIDTH_CLB or col0 + new_width > self.device.clb_cols:
            new_width = width + (-WIDTH_STEP_CLB if grow else WIDTH_STEP_CLB)
        if new_width < MIN_WIDTH_CLB or col0 + new_width > self.device.clb_cols:
            return None
        placements = list(state.placements)
        placements[region] = (col0, new_width)
        return SearchState(assign=state.assign, placements=tuple(placements))

    def _move_swap(self, state: SearchState, rng) -> Optional[SearchState]:
        """Floorplan layer: exchange the spans of two regions."""
        if state.n_regions < 2:
            return None
        a = int(rng.integers(0, state.n_regions))
        b = int(rng.integers(0, state.n_regions - 1))
        if b >= a:
            b += 1
        placements = list(state.placements)
        placements[a], placements[b] = placements[b], placements[a]
        if tuple(placements) == state.placements:
            return None
        return SearchState(assign=state.assign, placements=tuple(placements))

    # -- identity ---------------------------------------------------------------

    def describe(self, state: SearchState) -> str:
        """Human-readable rendering of a state."""
        lines = [f"{state.n_regions} region(s) on {self.device.name}"]
        members = state.region_ops()
        for region, (col0, width) in enumerate(state.placements):
            ops = ", ".join(self.movable_ops[i] for i in members[region])
            lines.append(
                f"  {self.region_name(region)}: columns [{col0}, {col0 + width}) <- {ops}"
            )
        return "\n".join(lines)
