"""Search-restart sharding over the parallel sweep engine.

The seeded drivers in :mod:`repro.search.anneal` run their restarts
sequentially; each restart is an *independent* trajectory (its own
``SeedSequence(seed, spawn_key=(i,))`` stream, its own starting point), so
restarts are embarrassingly parallel.  :func:`run_search_sharded` farms
each global restart out as one :class:`SearchRestartJob` — a picklable
``restarts=1`` search with ``restart_offset=i`` and that restart's slice
of the evaluation budget — over a
:class:`~repro.exec.engine.ParallelSweepEngine`, then merges the shard
results deterministically:

- shard ``i`` walks the **bit-identical trajectory** restart ``i`` of a
  sequential run would walk (the explicit ``spawn_key`` addressing in
  :func:`~repro.search.anneal._restart_rngs` guarantees the stream;
  ``restart_offset`` keeps the frontier-anchored start on global
  restart 0 only);
- the merge is order-independent: shards are folded in restart order
  whatever order they finished in, the best state breaks cost ties by
  lowest restart index, and the merged trajectory re-bases each shard's
  improvement indices onto the cumulative evaluation count — so
  ``jobs=0`` (in-process serial shards) and ``jobs=N`` produce the same
  :meth:`~repro.search.anneal.SearchResult.digest`;
- one deliberate difference from a sequential ``run_search``: budget that
  a sequential restart leaves unspent (move generator stuck, greedy
  patience) rolls over to the next restart; sharded restarts are
  independent, so unspent budget is simply unspent.  Equal seeds still
  mean equal results *within* each mode.

Pass ``pool=`` to reuse a warm :class:`~repro.exec.pool.WorkerPool` across
many sharded searches (parameter studies over graphs/devices): the
restarts of every search stream through the same pre-imported workers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.device import VirtexIIDevice, XC2V2000
from repro.flows.observe import FlowObserver
from repro.reconfig.architectures import ReconfigArchitecture
from repro.search.anneal import SearchConfig, SearchResult, run_search
from repro.search.objective import CostEvaluator, CostWeights
from repro.search.space import SearchSpace

__all__ = ["SearchRestartJob", "run_search_sharded", "shard_configs", "merge_shard_results"]


@dataclass(frozen=True)
class SearchRestartJob:
    """One picklable search restart (a ``restarts=1`` driver run).

    Plugs into the generic job protocol of :func:`repro.exec.worker.run_job`
    (``job_id`` + ``execute``), so sharded searches inherit the sweep
    engine's warm pool, pull dispatch, retry and crash isolation for free.
    The worker rebuilds the space and a memoizing evaluator locally; with a
    shared ``cache_dir`` on the engine, evaluations are memoized across
    shards through the crash-safe disk tier.
    """

    job_id: str
    graph: AlgorithmGraph
    library: OperationLibrary
    device: VirtexIIDevice
    architecture: Optional[ReconfigArchitecture]
    method: str
    config: SearchConfig  #: restarts=1, restart_offset=<global index>
    max_regions: Optional[int] = None
    weights: CostWeights = CostWeights()
    #: Fault-injection hook honoured by :func:`repro.exec.worker.run_job`.
    fault: Optional[str] = None

    def execute(
        self, attempt: int = 1, cache: Any = None, observer: Optional[FlowObserver] = None
    ) -> dict[str, Any]:
        space = SearchSpace(
            self.graph, self.library, device=self.device, max_regions=self.max_regions
        )
        evaluator = CostEvaluator(
            space, architecture=self.architecture, weights=self.weights, cache=cache
        )
        result = run_search(space, evaluator, self.config, method=self.method)
        # SearchResult pickles cleanly (plain dataclasses of tuples), so the
        # merge works on real states — not a lossy JSON rendering.
        return {"job_id": self.job_id, "search_result": result}


def shard_configs(config: SearchConfig) -> list[SearchConfig]:
    """Split ``config`` into one ``restarts=1`` config per global restart.

    Budget is sliced exactly as the sequential drivers slice it
    (``budget * (i + 1) // restarts`` cumulative limits), so shard ``i``
    gets the same evaluation allowance sequential restart ``i`` starts
    with.
    """
    return [
        replace(
            config,
            restarts=1,
            restart_offset=config.restart_offset + i,
            budget=max(
                1,
                config.budget * (i + 1) // config.restarts
                - config.budget * i // config.restarts,
            ),
        )
        for i in range(config.restarts)
    ]


def merge_shard_results(
    shards: list[SearchResult], config: SearchConfig, method: str
) -> SearchResult:
    """Fold per-restart results into one, independent of completion order.

    ``shards`` must be in global restart order.  The best state is the
    lowest ``total_ns`` with ties broken by the earliest restart; the
    merged trajectory re-bases each shard's improvement indices onto the
    cumulative evaluation count and keeps only *global* improvements —
    exactly what a sequential run's best-so-far bookkeeping records.
    """
    if not shards:
        raise ValueError("cannot merge zero shard results")
    best = min(enumerate(shards), key=lambda pair: (pair[1].best_cost.total_ns, pair[0]))[1]
    trajectory: list[tuple[int, float]] = []
    best_so_far = float("inf")
    offset = 0
    for shard in shards:
        for index, total_ns in shard.trajectory:
            if total_ns < best_so_far:
                best_so_far = total_ns
                trajectory.append((offset + index, total_ns))
        offset += shard.evaluations
    return SearchResult(
        method=method,
        best_state=best.best_state,
        best_cost=best.best_cost,
        trajectory=trajectory,
        evaluations=sum(s.evaluations for s in shards),
        accepted=sum(s.accepted for s in shards),
        improved=len(trajectory),
        seed=config.seed,
        restarts=config.restarts,
    )


def run_search_sharded(
    graph: AlgorithmGraph,
    library: OperationLibrary,
    device: VirtexIIDevice = XC2V2000,
    architecture: Optional[ReconfigArchitecture] = None,
    method: str = "anneal",
    config: SearchConfig = SearchConfig(),
    max_regions: Optional[int] = None,
    weights: CostWeights = CostWeights(),
    jobs: int = 0,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    cache_dir: Optional[str] = None,
    observer: Optional[FlowObserver] = None,
    pool=None,
) -> SearchResult:
    """Run a multi-restart search with one engine job per restart.

    ``jobs=0`` runs the shards serially in-process through the engine's
    serial path (the byte-level reference: its digest must equal any
    ``jobs=N`` run's).  A failed shard — crash, timeout, retries exhausted
    — raises: a silently dropped restart would change the digest.
    """
    from repro.exec.engine import ParallelSweepEngine

    shard_jobs = [
        SearchRestartJob(
            job_id=f"restart{cfg.restart_offset:03d}@{method}",
            graph=graph,
            library=library,
            device=device,
            architecture=architecture,
            method=method,
            config=cfg,
            max_regions=max_regions,
            weights=weights,
        )
        for cfg in shard_configs(config)
    ]
    engine = ParallelSweepEngine(
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        cache_dir=cache_dir,
        observer=observer,
        sweep_name=f"search:{graph.name}:{method}",
        pool=pool,
    )
    try:
        report = engine.run(shard_jobs)
    finally:
        if pool is None:
            engine.close()
    if report.failed:
        detail = "; ".join(f"{r.job_id}: {r.error}" for r in report.failed)
        raise RuntimeError(
            f"search sharding failed for {len(report.failed)} restart(s): {detail}"
        )
    shards = [r.payload["search_result"] for r in report.results]
    return merge_shard_results(shards, config, method)
