"""Seeded search drivers: simulated annealing plus two baselines.

All three drivers walk the joint partition/schedule/floorplan space through
the same :class:`~repro.search.space.SearchSpace` move generator and the
same memoizing :class:`~repro.search.objective.CostEvaluator`, so their
results are directly comparable:

- :func:`anneal` — Metropolis acceptance under a geometric cooling
  schedule, with random restarts drawing fresh starting points;
- :func:`greedy` — first-improvement hill climbing with a patience
  counter (restarts make it the classic random-restart baseline);
- :func:`random_search` — independent uniform samples (the sanity floor).

Every driver draws *all* randomness from one
:class:`numpy.random.SeedSequence` rooted at ``config.seed``, with one
spawned child per restart — the same idiom
:func:`repro.mccdma.engine.frame_seed_sequences` uses — so equal seeds
reproduce identical trajectories bit-for-bit, which
:meth:`SearchResult.digest` asserts across processes.  Progress emits
``repro.obs`` spans (``search:<method>`` / ``search:restart``) and
counters, and every improvement lands on the best-so-far trajectory.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.obs import get_metrics, get_tracer
from repro.obs.telemetry import get_telemetry
from repro.search.objective import CostBreakdown, CostEvaluator
from repro.search.space import SearchSpace, SearchState

__all__ = [
    "SearchConfig",
    "SearchResult",
    "anneal",
    "greedy",
    "random_search",
    "run_search",
    "SEARCH_METHODS",
]


@dataclass(frozen=True)
class SearchConfig:
    """Knobs shared by every driver (annealing-specific ones are ignored
    by the baselines, so one config sweeps all methods fairly)."""

    #: Total evaluation budget across all restarts.
    budget: int = 400
    #: Root seed of the run's :class:`numpy.random.SeedSequence`.
    seed: int = 0
    #: Independent restarts; each gets a spawned child sequence.
    restarts: int = 2
    #: Global index of this config's *first* restart.  Restart ``i`` of a
    #: run always draws from ``SeedSequence(seed, spawn_key=(offset + i,))``
    #: — identical to child ``offset + i`` of a sequential run rooted at the
    #: same seed — so :func:`repro.search.parallel.run_search_sharded` can
    #: farm restarts out as ``restarts=1`` shards that reproduce the exact
    #: per-restart trajectories of an unsharded run.
    restart_offset: int = 0
    #: Starting temperature in cost units (ns); ``None`` auto-scales to a
    #: fraction of the initial state's cost.
    initial_temperature: Optional[float] = None
    #: Geometric cooling factor per iteration.
    cooling: float = 0.97
    #: Floor temperature — keeps ``exp`` arguments finite late in the run.
    min_temperature: float = 1.0
    #: Greedy only: consecutive non-improving moves before giving up a restart.
    patience: int = 40

    def __post_init__(self):
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.restart_offset < 0:
            raise ValueError("restart_offset must be >= 0")


@dataclass
class SearchResult:
    """Outcome of one driver run (trajectory included for plotting/digests)."""

    method: str
    best_state: SearchState
    best_cost: CostBreakdown
    #: ``(evaluation_index, best_total_ns)`` at every improvement.
    trajectory: list[tuple[int, float]] = field(default_factory=list)
    evaluations: int = 0
    accepted: int = 0
    improved: int = 0
    seed: int = 0
    restarts: int = 1

    def digest(self) -> str:
        """Content hash of the run — equal seeds must produce equal digests."""
        payload = json.dumps(
            {
                "method": self.method,
                "seed": self.seed,
                "restarts": self.restarts,
                "best": self.best_state.key(),
                "total_ns": self.best_cost.total_ns,
                "trajectory": self.trajectory,
                "evaluations": self.evaluations,
                "accepted": self.accepted,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "seed": self.seed,
            "restarts": self.restarts,
            "evaluations": self.evaluations,
            "accepted": self.accepted,
            "improved": self.improved,
            "best_state": self.best_state.key(),
            "best": self.best_cost.to_dict(),
            "trajectory": self.trajectory,
            "digest": self.digest(),
        }

    def summary(self) -> str:
        cost = self.best_cost
        feasibility = "feasible" if cost.feasible else f"{len(cost.violations)} violation(s)"
        return (
            f"{self.method}: best {cost.total_ns / 1e3:.1f} us over {self.evaluations} "
            f"evaluation(s) ({cost.n_regions} region(s), {feasibility}; digest {self.digest()})"
        )


def _restart_rngs(config: SearchConfig) -> list[np.random.Generator]:
    """One child generator per restart from a single rooted sequence.

    ``SeedSequence(seed, spawn_key=(i,))`` is exactly child ``i`` of
    ``SeedSequence(seed).spawn(...)``, so addressing children explicitly
    through ``restart_offset`` gives a sharded run (each shard covering a
    slice of the global restart range) bit-identical per-restart streams.
    """
    return [
        np.random.default_rng(
            np.random.SeedSequence(config.seed, spawn_key=(config.restart_offset + i,))
        )
        for i in range(config.restarts)
    ]


class _Run:
    """Shared bookkeeping: budget, best-so-far, trajectory, obs counters.

    When an ambient telemetry hub is installed, the run also streams
    windowed series over the *evaluation index* axis (the ``search``
    domain): ``search.evaluations`` / ``search.accepted`` /
    ``search.improved`` counters and a ``search.cost_ns`` sketch of
    candidate costs — acceptance and improvement *rates per evaluation
    window* are then ratio SLOs, and a stalled search (acceptance collapse
    under a cold temperature) is visible as the series flatlining rather
    than as a single end-of-run total.
    """

    def __init__(self, method: str, evaluator: CostEvaluator, config: SearchConfig):
        self.method = method
        self.evaluator = evaluator
        self.config = config
        self.evaluations = 0
        self.accepted = 0
        self.improved = 0
        self.trajectory: list[tuple[int, float]] = []
        self.best_state: Optional[SearchState] = None
        self.best_cost: Optional[CostBreakdown] = None
        hub = get_telemetry()
        self._tstore = hub.store("search") if hub is not None else None

    @property
    def exhausted(self) -> bool:
        return self.evaluations >= self.config.budget

    def evaluate(self, state: SearchState) -> CostBreakdown:
        cost = self.evaluator.evaluate(state)
        self.evaluations += 1
        improved = self.best_cost is None or cost.total_ns < self.best_cost.total_ns
        if improved:
            self.best_state, self.best_cost = state, cost
            self.improved += 1
            self.trajectory.append((self.evaluations, cost.total_ns))
        if self._tstore is not None:
            t = self.evaluations
            self._tstore.counter_add("search.evaluations", t, 1, method=self.method)
            self._tstore.observe("search.cost_ns", t, cost.total_ns, method=self.method)
            if improved:
                self._tstore.counter_add("search.improved", t, 1, method=self.method)
        return cost

    def accept(self) -> None:
        """One accepted move (the telemetry-aware ``accepted += 1``)."""
        self.accepted += 1
        if self._tstore is not None:
            self._tstore.counter_add(
                "search.accepted", self.evaluations, 1, method=self.method
            )

    def result(self) -> SearchResult:
        assert self.best_state is not None and self.best_cost is not None
        metrics = get_metrics()
        metrics.counter("search.evaluations").inc(self.evaluations)
        metrics.counter("search.accepted").inc(self.accepted)
        metrics.counter("search.improved").inc(self.improved)
        return SearchResult(
            method=self.method,
            best_state=self.best_state,
            best_cost=self.best_cost,
            trajectory=self.trajectory,
            evaluations=self.evaluations,
            accepted=self.accepted,
            improved=self.improved,
            seed=self.config.seed,
            restarts=self.config.restarts,
        )


def _start_state(
    space: SearchSpace, restart: int, rng: np.random.Generator
) -> SearchState:
    """*Global* restart 0 starts from the deterministic fixed-sweep point;
    later restarts scatter uniformly so the search escapes that basin.
    ``restart`` is the global index (``config.restart_offset`` included),
    so exactly one shard of a sharded run anchors to the frontier."""
    return space.initial_state() if restart == 0 else space.random_state(rng)


def anneal(
    space: SearchSpace,
    evaluator: CostEvaluator,
    config: SearchConfig = SearchConfig(),
) -> SearchResult:
    """Simulated annealing with Metropolis acceptance and restarts."""
    run = _Run("anneal", evaluator, config)
    tracer = get_tracer()
    with tracer.span("search:anneal", attributes={"seed": config.seed, "budget": config.budget}):
        for restart, rng in enumerate(_restart_rngs(config)):
            # Budget is sliced across restarts (the last slice absorbs
            # rounding) so every spawned child actually walks.
            limit = config.budget * (restart + 1) // config.restarts
            if run.evaluations >= limit:
                continue
            global_restart = config.restart_offset + restart
            with tracer.span("search:restart", attributes={"restart": global_restart}):
                current = _start_state(space, global_restart, rng)
                current_cost = run.evaluate(current)
                temperature = config.initial_temperature
                if temperature is None:
                    temperature = max(config.min_temperature, 0.05 * current_cost.total_ns)
                while run.evaluations < limit:
                    candidate = space.neighbor(current, rng)
                    if candidate == current:
                        break  # move generator is stuck; spend budget elsewhere
                    cost = run.evaluate(candidate)
                    delta = cost.total_ns - current_cost.total_ns
                    if delta <= 0 or rng.random() < math.exp(
                        -delta / max(temperature, config.min_temperature)
                    ):
                        current, current_cost = candidate, cost
                        run.accept()
                    temperature = max(config.min_temperature, temperature * config.cooling)
    return run.result()


def greedy(
    space: SearchSpace,
    evaluator: CostEvaluator,
    config: SearchConfig = SearchConfig(),
) -> SearchResult:
    """Random-restart first-improvement hill climbing."""
    run = _Run("greedy", evaluator, config)
    tracer = get_tracer()
    with tracer.span("search:greedy", attributes={"seed": config.seed, "budget": config.budget}):
        for restart, rng in enumerate(_restart_rngs(config)):
            limit = config.budget * (restart + 1) // config.restarts
            if run.evaluations >= limit:
                continue
            global_restart = config.restart_offset + restart
            with tracer.span("search:restart", attributes={"restart": global_restart}):
                current = _start_state(space, global_restart, rng)
                current_cost = run.evaluate(current)
                stale = 0
                while run.evaluations < limit and stale < config.patience:
                    candidate = space.neighbor(current, rng)
                    if candidate == current:
                        break
                    cost = run.evaluate(candidate)
                    if cost.total_ns < current_cost.total_ns:
                        current, current_cost = candidate, cost
                        run.accept()
                        stale = 0
                    else:
                        stale += 1
    return run.result()


def random_search(
    space: SearchSpace,
    evaluator: CostEvaluator,
    config: SearchConfig = SearchConfig(),
) -> SearchResult:
    """Independent uniform samples — the floor every driver must beat."""
    run = _Run("random", evaluator, config)
    tracer = get_tracer()
    with tracer.span("search:random", attributes={"seed": config.seed, "budget": config.budget}):
        rngs = _restart_rngs(config)
        run.evaluate(space.initial_state())
        index = 0
        while not run.exhausted:
            rng = rngs[index % len(rngs)]
            index += 1
            run.evaluate(space.random_state(rng))
    return run.result()


SEARCH_METHODS: dict[str, Callable[[SearchSpace, CostEvaluator, SearchConfig], SearchResult]] = {
    "anneal": anneal,
    "greedy": greedy,
    "random": random_search,
}


def run_search(
    space: SearchSpace,
    evaluator: CostEvaluator,
    config: SearchConfig = SearchConfig(),
    method: str = "anneal",
) -> SearchResult:
    """Dispatch to a driver by name (``anneal`` / ``greedy`` / ``random``)."""
    try:
        driver = SEARCH_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown search method {method!r}; expected one of {sorted(SEARCH_METHODS)}"
        ) from None
    return driver(space, evaluator, config)
