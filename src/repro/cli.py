"""Command-line interface.

Runs the paper's case study through the flow without writing any code::

    python -m repro flow                         # full flow report
    python -m repro table1                       # regenerate Table 1
    python -m repro macrocode                    # the synchronized executive
    python -m repro vhdl --out build/            # write VHDL + testbenches + UCF
    python -m repro simulate -n 32 --pattern step --policy history
    python -m repro sweep --jobs 4 --timeout 120 # parallel design-space sweep
    python -m repro linklevel --snr 0:10:2 --frames 200 --jobs 4
    python -m repro fleet --boards 100 --requests 200 --policy none,fixed,lru
    python -m repro fleet --live --telemetry fleet.jsonl --slo-hit-floor 0.4
    python -m repro tail fleet.jsonl                # replay a telemetry stream
    python -m repro search --groups 3 --budget 300 --seed 1 --trace search.json
    python -m repro bench-check --backfill          # benchmark regression gate
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from contextlib import ExitStack
from typing import Optional, Sequence

from repro.codegen.testbench import generate_all_testbenches
from repro.flows import (
    CompositeObserver,
    DesignFlow,
    JsonLinesObserver,
    RecordingObserver,
    SystemSimulation,
    parse_constraints,
    render_profile,
    table1_report,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_manifest,
    get_tracer,
    manifest_path_for,
    render_region_gantt,
    render_region_gantt_svg,
    use_metrics,
    use_tracer,
    validate_trace_file,
    write_chrome_trace,
    write_manifest,
)
from repro.mccdma import SnrTrace
from repro.mccdma.bindings import make_case_study_bindings
from repro.mccdma.casestudy import build_mccdma_design
from repro.reconfig import case_a_standalone, case_b_processor
from repro.runtime import ENGINES, TRAFFIC_PATTERNS, get_bundle, policy_names

__all__ = ["main", "build_parser"]

CASE_STUDY_CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""

_ARCHITECTURES = {
    "case_a": case_a_standalone,
    "case_b": case_b_processor,
}


def _policy_name(value: str) -> str:
    """Argparse type: one registered policy name, validated at parse time.

    Clairvoyant bundles (Belady) need the demand schedule up front; the
    runtime-simulation surfaces generate demands on the fly, so those names
    are rejected here rather than deep inside a worker process.
    """
    try:
        bundle = get_bundle(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown policy {value!r}; known policies: {', '.join(policy_names())}"
        ) from None
    if bundle.needs_future:
        usable = ", ".join(policy_names(include_future=False))
        raise argparse.ArgumentTypeError(
            f"policy {value!r} is clairvoyant (needs the full demand schedule) "
            f"and only works with the fleet driver; pick one of: {usable}"
        )
    return value


def _policy_list(value: str) -> list[str]:
    """Argparse type: comma-separated registry policy names (fleet allows all)."""
    names = [name.strip() for name in value.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError("empty policy list")
    for name in names:
        try:
            get_bundle(name)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"unknown policy {name!r}; known policies: {', '.join(policy_names())}"
            ) from None
    return names


def _run_flow(args) -> "tuple":
    design = build_mccdma_design()
    log_json = getattr(args, "log_json", None)
    with ExitStack() as stack:
        observer = stack.enter_context(JsonLinesObserver(log_json)) if log_json else None
        flow = DesignFlow.from_design(
            design,
            dynamic_constraints=parse_constraints(CASE_STUDY_CONSTRAINTS),
            reconfig_architecture=_ARCHITECTURES[args.architecture](),
            prefetch=not getattr(args, "reactive", False),
            observer=observer,
        )
        flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
        return design, flow.run()


def _maybe_profile(args, result, out) -> None:
    """Print the per-stage profile table when ``--profile`` was given."""
    if getattr(args, "profile", False):
        print(render_profile(result.events), file=out)


def _cmd_flow(args, out) -> int:
    _, result = _run_flow(args)
    _maybe_profile(args, result, out)
    if getattr(args, "json", False):
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(result.report(), file=out)
    return 0


def _cmd_table1(args, out) -> int:
    design, result = _run_flow(args)
    _maybe_profile(args, result, out)
    print(table1_report(design.library, flow=result), file=out)
    return 0


def _cmd_macrocode(args, out) -> int:
    _, result = _run_flow(args)
    _maybe_profile(args, result, out)
    print(result.executive.render(), file=out)
    return 0


def _cmd_graph_dump(args, out) -> int:
    from repro.dfg import io as dfg_io
    from repro.mccdma.casestudy import build_mccdma_graph

    text = dfg_io.dumps(build_mccdma_graph())
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_board_dump(args, out) -> int:
    from repro.arch import io as arch_io
    from repro.arch.boards import sundance_board

    text = arch_io.dumps(sundance_board())
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_export(args, out) -> int:
    from repro.flows.export import export_build_directory

    _, result = _run_flow(args)
    _maybe_profile(args, result, out)
    written = export_build_directory(result, args.out)
    for path in written:
        print(f"wrote {path}", file=out)
    print(f"{len(written)} artefacts under {args.out}", file=out)
    return 0


def _cmd_vhdl(args, out) -> int:
    _, result = _run_flow(args)
    _maybe_profile(args, result, out)
    target = pathlib.Path(args.out)
    target.mkdir(parents=True, exist_ok=True)
    files = dict(result.generated.files)
    files.update(generate_all_testbenches(result.generated.files))
    files["top.ucf"] = result.modular.ucf
    for name, text in sorted(files.items()):
        (target / name).write_text(text)
        print(f"wrote {target / name}", file=out)
    return 0


def _cmd_sweep(args, out) -> int:
    from repro.exec.engine import ParallelSweepEngine
    from repro.fabric.device import device_by_name
    from repro.flows.designspace import design_point_from_payload, sweep_jobs_for_grid
    from repro.mccdma.casestudy import build_mccdma_design

    design = build_mccdma_design()
    try:
        devices = tuple(device_by_name(name.strip()) for name in args.devices.split(","))
    except KeyError as err:
        print(f"error: {err.args[0]}", file=out)
        return 2
    unknown = [
        name.strip()
        for name in args.sweep_architectures.split(",")
        if name.strip() not in _ARCHITECTURES
    ]
    if unknown:
        print(
            f"error: unknown architecture(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(_ARCHITECTURES))}",
            file=out,
        )
        return 2
    architectures = tuple(
        _ARCHITECTURES[name.strip()]() for name in args.sweep_architectures.split(",")
    )
    jobs = sweep_jobs_for_grid(
        design.graph,
        design.library,
        devices=devices,
        architectures=architectures,
        dynamic_constraints=parse_constraints(CASE_STUDY_CONSTRAINTS),
        pins=(("bit_src", "DSP"), ("select", "DSP")),
        prefetch=not getattr(args, "reactive", False),
    )
    if getattr(args, "trace", None) or args.simulate_iterations:
        # A traced sweep should show real reconfiguration activity, so each
        # fitting point also runs a short system simulation in its worker.
        n_iter = args.simulate_iterations or 8
        jobs = [
            dataclasses.replace(
                job, simulate_iterations=n_iter, simulate_policy=args.simulate_policy
            )
            for job in jobs
        ]
    log_json = getattr(args, "log_json", None)
    with ExitStack() as stack:
        observer = stack.enter_context(JsonLinesObserver(log_json)) if log_json else None
        engine = stack.enter_context(
            ParallelSweepEngine(
                jobs=args.jobs,
                timeout_s=args.timeout,
                retries=args.retries,
                cache_dir=args.cache_dir,
                observer=observer,
                sweep_name=f"designspace:{design.graph.name}",
            )
        )
        report = engine.run(jobs)
    if getattr(args, "profile", False):
        print(render_profile(report.events, aggregate=True), file=out)
    if args.json:
        payload = report.to_dict()
        payload["points"] = [
            design_point_from_payload(r).render() for r in report.results
        ]
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        for result in report.results:
            print(design_point_from_payload(result).render(), file=out)
        print(report.summary(), file=out)
    return 0 if not report.failed else 1


def _make_snr(pattern: str, n: int):
    if pattern == "step":
        return SnrTrace.step(low_db=8.0, high_db=22.0, period=max(1, n // 4), n=n)
    if pattern == "walk":
        return SnrTrace.random_walk(start_db=14.0, step_db=1.2, n=n, seed=0)
    if pattern == "sinus":
        return SnrTrace.sinusoid(mean_db=14.0, amplitude_db=6.0, period=max(2, n // 3), n=n)
    raise ValueError(f"unknown SNR pattern {pattern!r}")


def _cmd_simulate(args, out) -> int:
    _, result = _run_flow(args)
    _maybe_profile(args, result, out)
    snr = _make_snr(args.pattern, args.iterations)
    state = make_case_study_bindings(snr, seed=args.seed)
    runtime = SystemSimulation(
        result,
        n_iterations=args.iterations,
        bindings=state.bindings,
        policy=args.policy,  # registry name; SystemSimulation resolves it
        capture={"dac"},
    ).run()
    print(runtime.summary(), file=out)
    plan = ", ".join(m.value for m in state.selected)
    print(f"modulation plan: {plan}", file=out)
    if args.gantt:
        print(runtime.execution.trace.gantt(width=72), file=out)
    return 0


def _parse_snr_grid(spec: str) -> list[float]:
    """SNR grid: ``start:stop:step`` (stop inclusive) or ``v1,v2,...``."""
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(f"SNR range must be start:stop:step, got {spec!r}")
        start, stop, step = (float(p) for p in parts)
        if step <= 0:
            raise ValueError("SNR range step must be positive")
        points = []
        value = start
        while value <= stop + 1e-9:
            points.append(round(value, 9))
            value += step
        return points
    return [float(p) for p in spec.split(",") if p.strip()]


def _cmd_linklevel(args, out) -> int:
    from repro.mccdma.engine import LinkEngineConfig, LinkSimulationEngine
    from repro.mccdma.transmitter import MCCDMAConfig

    try:
        snr_points = _parse_snr_grid(args.snr)
    except ValueError as err:
        print(f"error: {err}", file=out)
        return 2
    if not snr_points:
        print("error: empty SNR grid", file=out)
        return 2
    strategies = [name.strip() for name in args.strategies.split(",") if name.strip()]
    unknown = [s for s in strategies if s not in ("qpsk", "qam16", "adaptive")]
    if unknown:
        print(f"error: unknown strategy(ies) {', '.join(unknown)}", file=out)
        return 2
    recorder = RecordingObserver() if getattr(args, "profile", False) else None
    log_json = getattr(args, "log_json", None)
    report: dict[str, list[dict]] = {}
    with ExitStack() as stack:
        json_sink = stack.enter_context(JsonLinesObserver(log_json)) if log_json else None
        sinks = [o for o in (recorder, json_sink) if o]
        observer = None
        if sinks:
            observer = sinks[0] if len(sinks) == 1 else CompositeObserver(*sinks)
        engine = LinkSimulationEngine(
            config=MCCDMAConfig(user_codes=tuple(range(args.users))),
            engine=LinkEngineConfig(
                batch_frames=args.batch,
                batched=not args.reference,
                ci_halfwidth=args.ci_halfwidth,
            ),
            observer=observer,
        )
        pool = None
        if args.jobs > 0 and len(strategies) > 1:
            # One warm pool serves every strategy's curve: workers spawn
            # and import once, not once per --strategy.
            from repro.exec.pool import WorkerPool

            pool = stack.enter_context(WorkerPool(args.jobs, name="linklevel"))
        for strategy in strategies:
            results = engine.sweep_points(
                strategy, snr_points, args.frames, seed=args.seed,
                jobs=args.jobs, timeout_s=args.timeout, pool=pool,
            )
            report[strategy] = [
                {"snr_db": snr, **result.to_dict(), "ber": result.ber}
                for snr, result in zip(snr_points, results)
            ]
    if recorder is not None:
        print(render_profile(recorder.events), file=out)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        for strategy in strategies:
            print(f"{strategy}:", file=out)
            for row in report[strategy]:
                print(
                    f"  snr {row['snr_db']:+6.2f} dB  ber {row['ber']:.3e}  "
                    f"frames {row['n_frames']:4d}  goodput "
                    f"{row['delivered_bits'] / max(row['n_frames'], 1):.1f} bits/frame",
                    file=out,
                )
    return 0


def _cmd_trace(args, out) -> int:
    """Traced case-study run producing the paper's Fig. 4 residency view.

    ``--check PATH`` instead validates an existing Chrome trace file (span
    parent chain, phase vocabulary, timestamps) and exits non-zero on errors.
    """
    if args.check:
        errors = validate_trace_file(args.check)
        if errors:
            for error in errors:
                print(f"INVALID: {error}", file=out)
            print(f"{args.check}: {len(errors)} error(s)", file=out)
            return 1
        print(f"{args.check}: OK", file=out)
        return 0
    _, result = _run_flow(args)
    _maybe_profile(args, result, out)
    snr = _make_snr(args.pattern, args.iterations)
    state = make_case_study_bindings(snr, seed=args.seed)
    runtime = SystemSimulation(
        result,
        n_iterations=args.iterations,
        bindings=state.bindings,
        policy=args.policy,
        capture={"dac"},
    ).run()
    print(runtime.summary(), file=out)
    tracer = get_tracer()
    if tracer.enabled:
        print(render_region_gantt(tracer.spans), file=out)
        if args.svg:
            svg_path = pathlib.Path(args.svg)
            svg_path.parent.mkdir(parents=True, exist_ok=True)
            svg_path.write_text(render_region_gantt_svg(tracer.spans), encoding="utf-8")
            print(f"wrote {svg_path}", file=out)
    return 0


def _cmd_search(args, out) -> int:
    """Annealed partition/schedule/floorplan co-optimization vs fixed sweep."""
    from repro.dfg.generators import multiregion_graph
    from repro.dfg.library import default_library
    from repro.fabric.device import device_by_name
    from repro.flows.designspace import search_multiregion
    from repro.obs import get_metrics, record_search_stats

    try:
        device = device_by_name(args.device)
    except KeyError as err:
        print(f"error: {err.args[0]}", file=out)
        return 2
    graph = multiregion_graph(n_groups=args.groups, alternatives=args.alternatives)
    report = search_multiregion(
        graph,
        default_library(),
        device=device,
        architecture=_ARCHITECTURES[args.architecture](),
        method=args.method,
        budget=args.budget,
        seed=args.seed,
        restarts=args.restarts,
        max_regions=args.max_regions,
        jobs=args.jobs,
    )
    record_search_stats(get_metrics(), report.result)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.render(), file=out)
    return 0


def _fleet_slo_rules(args) -> list:
    """Declarative fleet SLOs from the --slo-* flags (empty = no monitor)."""
    from repro.obs.telemetry import SloRule

    rules = []
    if getattr(args, "slo_hit_floor", None) is not None:
        rules.append(
            SloRule(
                name="hit-rate-floor",
                series="fleet.hits",
                kind="floor",
                threshold=args.slo_hit_floor,
                denominator="fleet.demands",
                min_count=getattr(args, "slo_min_count", 1),
            )
        )
    if getattr(args, "slo_p99_ceiling", None) is not None:
        rules.append(
            SloRule(
                name="stall-p99-ceiling",
                series="fleet.stall_ns",
                kind="ceiling",
                threshold=args.slo_p99_ceiling,
                quantile=0.99,
                min_count=getattr(args, "slo_min_count", 1),
            )
        )
    return rules


def _redraw(out, text: str) -> None:
    """Repaint a live dashboard: clear-screen only when ``out`` is a tty."""
    if getattr(out, "isatty", lambda: False)():
        print("\x1b[2J\x1b[H", end="", file=out)
    print(text, file=out)


def _cmd_fleet(args, out) -> int:
    """Multiplex a fleet of boards on one kernel; frontier across policies."""
    from repro.obs import get_metrics, record_fleet_stats, spans_from_sim_trace
    from repro.runtime import FleetConfig, generate_fleet_schedules, run_fleet

    tracer = get_tracer()
    # When tracing, record a few boards' full kernel traces so Perfetto
    # shows one lane per board; tracing the whole fleet would dominate RAM
    # (traced boards run through the reference kernel under either engine).
    trace_boards = args.trace_boards
    if trace_boards is None:
        trace_boards = 3 if tracer.enabled else 0
    base = FleetConfig(
        n_boards=args.boards,
        requests_per_board=args.requests,
        traffic=args.traffic,
        seed=args.seed,
        regions=args.regions,
        modules_per_region=args.modules,
        region_slots=args.slots,
        architecture=_ARCHITECTURES[args.architecture]().name,
        mean_gap_ns=args.mean_gap,
        trace_boards=trace_boards,
        engine=args.engine,
    )
    # One traffic-generation pass serves every policy: schedules depend
    # only on (seed, board_id, traffic).
    schedules = generate_fleet_schedules(base)
    store = monitor = None
    slo_rules = _fleet_slo_rules(args)
    want_telemetry = args.live or args.telemetry is not None or bool(slo_rules)
    if want_telemetry:
        from repro.obs.dashboard import render_dashboard
        from repro.obs.telemetry import SloMonitor, TimeSeriesStore

        store = TimeSeriesStore(window=args.telemetry_window, clock="sim")
        monitor = SloMonitor(store, slo_rules)
    breaches: list = []
    reports = {}
    for name in args.policy:
        config = dataclasses.replace(base, policy=name)
        with tracer.span(f"fleet:{name}") as span:
            report = run_fleet(config, schedules=schedules, telemetry=store)
        if tracer.enabled:
            span.set_attribute("boards", report.n_boards)
            span.set_attribute("requests", report.total_requests)
            span.set_attribute("hit_rate", report.hit_rate)
            for board_trace in report.traces:
                tracer.add_spans(
                    spans_from_sim_trace(board_trace, parent=span.context)
                )
            record_fleet_stats(get_metrics(), report, prefix=f"fleet.{name}")
        reports[name] = report
        if monitor is not None:
            breaches.extend(monitor.evaluate())
        if args.live:
            done = len(reports)
            _redraw(
                out,
                render_dashboard(
                    store,
                    last=args.live_windows,
                    breaches=breaches,
                    title=f"fleet {done}/{len(args.policy)} policies "
                    f"({args.boards} boards x {args.requests} req)",
                    ascii_only=args.ascii,
                ),
            )
    if args.telemetry is not None:
        telemetry_path = pathlib.Path(args.telemetry)
        telemetry_path.parent.mkdir(parents=True, exist_ok=True)
        rows = store.write_jsonl(telemetry_path)
        print(f"wrote telemetry {telemetry_path} ({rows} rows)", file=out)
    if args.json:
        payload = {name: report.to_dict() for name, report in reports.items()}
        if monitor is not None and monitor.rules:
            payload["slo_breaches"] = [breach.to_dict() for breach in breaches]
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 3 if breaches else 0
    for report in reports.values():
        print(report.summary(), file=out)
    print(file=out)
    print(f"{'policy':12s} {'hit rate':>9s} {'mean stall':>12s} {'req/s':>12s} {'digest':>12s}", file=out)
    for name, report in reports.items():
        print(
            f"{name:12s} {report.hit_rate:9.1%} {report.mean_stall_ns / 1e3:10.1f}us "
            f"{report.requests_per_sec:12,.0f} {report.digest()[:12]:>12s}",
            file=out,
        )
    if monitor is not None and monitor.rules:
        if breaches:
            print(file=out)
            for breach in breaches:
                print(f"SLO BREACH: {breach.describe()}", file=out)
            print(f"{len(breaches)} SLO breach(es)", file=out)
            return 3
        print(f"SLO: {len(monitor.rules)} rule(s), no breaches", file=out)
    return 0


def _cmd_tail(args, out) -> int:
    """Render a telemetry JSONL stream as the fleet dashboard.

    One-shot by default (read, render, exit — safe for CI and pipes);
    ``--follow`` re-reads and repaints whenever the file grows, the
    ``top``-style view of a run writing telemetry elsewhere.
    """
    import time as _time

    from repro.obs.dashboard import render_dashboard
    from repro.obs.telemetry import SloMonitor, TimeSeriesStore

    path = pathlib.Path(args.path)
    last_size = -1
    while True:
        try:
            size = path.stat().st_size
        except OSError:
            if not args.follow:
                print(f"error: cannot read {path}", file=out)
                return 2
            size = -1
        if size != last_size and size >= 0:
            last_size = size
            try:
                store = TimeSeriesStore.read_jsonl(path)
            except ValueError as err:
                print(f"error: {path}: {err}", file=out)
                return 2
            breaches = SloMonitor(store, _fleet_slo_rules(args)).evaluate()
            _redraw(
                out,
                render_dashboard(
                    store,
                    last=args.live_windows,
                    breaches=breaches,
                    title=str(path),
                    ascii_only=args.ascii,
                ),
            )
        if not args.follow:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


def _cmd_bench_check(args, out) -> int:
    """The benchmark-history regression gate (and its --backfill mode)."""
    from repro.obs.history import DEFAULT_HISTORY_PATH, backfill, bench_check

    history_path = pathlib.Path(args.history) if args.history else DEFAULT_HISTORY_PATH
    if args.backfill:
        entries = backfill(args.results_dir, history_path)
        print(f"backfilled {len(entries)} entries into {history_path}", file=out)
        if not args.check_after_backfill:
            return 0
    results = bench_check(
        history_path,
        threshold_pct=args.threshold,
        trailing=args.trailing,
        benches=args.bench or None,
    )
    if args.json:
        print(
            json.dumps([dataclasses.asdict(r) for r in results], indent=2, sort_keys=True),
            file=out,
        )
    else:
        if not results:
            print(f"{history_path}: no history entries to check", file=out)
        for result in results:
            print(result.describe(), file=out)
    regressions = [r for r in results if r.status == "regression"]
    if regressions:
        print(f"{len(regressions)} regression(s) beyond {args.threshold:g}%", file=out)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-down design flow for partial/dynamic FPGA reconfiguration "
        "(Berthelot et al., IPDPS 2006) — case-study driver.",
    )
    parser.add_argument(
        "--architecture", choices=sorted(_ARCHITECTURES), default="case_a",
        help="Fig. 2 reconfiguration architecture (default: case_a, standalone ICAP)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-stage pipeline profile (wall time, cache hits) before the output",
    )
    parser.add_argument(
        "--log-json", metavar="PATH", default=None,
        help="append one JSON line per pipeline stage event to PATH",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the whole run and write Chrome trace-event "
        "JSON (Perfetto-loadable) to PATH, plus a sibling .manifest.json",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_flow = sub.add_parser("flow", help="run the full design flow and print the report")
    p_flow.add_argument(
        "--json", action="store_true",
        help="emit the flow result as JSON (FlowResult.to_dict()) instead of the text report",
    )
    sub.add_parser("table1", help="regenerate the paper's Table 1")
    sub.add_parser("macrocode", help="print the synchronized executive")

    p_gd = sub.add_parser("graph-dump", help="serialize the case-study algorithm graph")
    p_gd.add_argument("--out", default=None, help="output file (default: stdout)")
    p_bd = sub.add_parser("board-dump", help="serialize the Sundance board description")
    p_bd.add_argument("--out", default=None, help="output file (default: stdout)")

    p_vhdl = sub.add_parser("vhdl", help="write generated VHDL, testbenches and UCF")
    p_vhdl.add_argument("--out", required=True, help="output directory")

    p_exp = sub.add_parser(
        "export", help="write the complete build directory (HDL, UCF, executive, bitstreams, reports)"
    )
    p_exp.add_argument("--out", required=True, help="output directory")

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel design-space sweep of the case study over devices x architectures",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes (0 = serial in-process; default: 2)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job timeout in seconds (a hung worker fails only its job)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=1, metavar="K",
        help="retries per job before it is reported failed (default: 1)",
    )
    p_sweep.add_argument(
        "--devices", default="xc2v1000,xc2v2000,xc2v3000",
        help="comma-separated Virtex-II parts (default: the stock 3-device grid)",
    )
    p_sweep.add_argument(
        "--architectures", dest="sweep_architectures", default="case_a,case_b",
        help="comma-separated Fig. 2 architectures (default: case_a,case_b)",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="shared on-disk artifact cache for all workers (kept across runs)",
    )
    p_sweep.add_argument(
        "--json", action="store_true",
        help="emit the sweep report as JSON instead of the point table",
    )
    p_sweep.add_argument("--reactive", action="store_true", help="reconfiguration-blind executive")
    p_sweep.add_argument(
        "--simulate-iterations", type=int, default=0, metavar="N",
        help="run an N-iteration system simulation after each fitting point "
        "(default: 0; --trace implies 8 so traces show reconfiguration spans)",
    )
    p_sweep.add_argument(
        "--simulate-policy", type=_policy_name, default="on_select",
        metavar="POLICY",
        help="policy-registry name for the per-point simulations "
        f"(default: on_select; known: {', '.join(policy_names(include_future=False))})",
    )

    p_link = sub.add_parser(
        "linklevel",
        help="batched Monte-Carlo BER/goodput sweep of the MC-CDMA link",
    )
    p_link.add_argument(
        "--snr", default="-2:10:2",
        help="SNR grid in dB: start:stop:step (inclusive) or comma list (default: -2:10:2)",
    )
    p_link.add_argument(
        "--strategies", default="qpsk,qam16,adaptive",
        help="comma-separated strategies to sweep (default: all three)",
    )
    p_link.add_argument("--frames", type=int, default=200, help="frames per SNR point")
    p_link.add_argument("--users", type=int, default=1, help="active Walsh-code users")
    p_link.add_argument(
        "--batch", type=int, default=64,
        help="frames per vectorized batch (and early-stop check; default: 64)",
    )
    p_link.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes sharding SNR points (0 = serial in-process)",
    )
    p_link.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-point timeout in seconds when sharded",
    )
    p_link.add_argument("--seed", type=int, default=0)
    p_link.add_argument(
        "--ci-halfwidth", type=float, default=None, metavar="W",
        help="early-stop a point once the 95%% Wilson half-width on BER drops below W",
    )
    p_link.add_argument(
        "--reference", action="store_true",
        help="use the per-frame reference path instead of the batched kernels",
    )
    p_link.add_argument("--json", action="store_true", help="emit results as JSON")

    p_sim = sub.add_parser("simulate", help="runtime simulation with real MC-CDMA data")
    p_sim.add_argument("-n", "--iterations", type=int, default=24)
    p_sim.add_argument("--pattern", choices=("step", "walk", "sinus"), default="step")
    p_sim.add_argument(
        "--policy", type=_policy_name, default="none", metavar="POLICY",
        help="policy-registry name "
        f"(known: {', '.join(policy_names(include_future=False))})",
    )
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--reactive", action="store_true", help="reconfiguration-blind executive")
    p_sim.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")

    p_trace = sub.add_parser(
        "trace",
        help="traced flow + runtime simulation with the Fig. 4 region-residency "
        "Gantt, or --check to validate an existing trace file",
    )
    p_trace.add_argument(
        "--out", dest="trace", metavar="PATH", default="trace.json",
        help="Chrome trace-event output path (default: trace.json)",
    )
    p_trace.add_argument(
        "--svg", metavar="PATH", default=None,
        help="also write the region-residency Gantt as an SVG document",
    )
    p_trace.add_argument(
        "--check", metavar="PATH", default=None,
        help="validate an existing Chrome trace file instead of running anything",
    )
    p_trace.add_argument("-n", "--iterations", type=int, default=24)
    p_trace.add_argument("--pattern", choices=("step", "walk", "sinus"), default="step")
    p_trace.add_argument(
        "--policy", type=_policy_name, default="on_select", metavar="POLICY",
        help="policy-registry name "
        f"(known: {', '.join(policy_names(include_future=False))})",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--reactive", action="store_true", help="reconfiguration-blind executive")

    p_search = sub.add_parser(
        "search",
        help="co-optimize partitioning, region count and floorplan by "
        "simulated annealing; report the fixed-sweep frontier alongside",
    )
    p_search.add_argument(
        "--method", choices=("anneal", "greedy", "random"), default="anneal",
        help="search driver (default: anneal)",
    )
    p_search.add_argument(
        "--budget", type=int, default=400,
        help="evaluation budget across all restarts (default: 400)",
    )
    p_search.add_argument("--seed", type=int, default=0, help="root SeedSequence seed")
    p_search.add_argument(
        "--restarts", type=int, default=2,
        help="independent restarts sharing the budget (default: 2)",
    )
    p_search.add_argument(
        "--jobs", type=int, default=0,
        help="shard restarts over this many pooled workers "
        "(default: 0 = in-process)",
    )
    p_search.add_argument(
        "--groups", type=int, default=2,
        help="condition groups in the generated workload (default: 2)",
    )
    p_search.add_argument(
        "--alternatives", type=int, default=2,
        help="mutually-exclusive alternatives per group (default: 2)",
    )
    p_search.add_argument(
        "--max-regions", type=int, default=None,
        help="cap on dynamic regions (default: min(conditioned ops, 4))",
    )
    p_search.add_argument(
        "--device", default="xc2v2000",
        help="Virtex-II part hosting the regions (default: xc2v2000)",
    )
    p_search.add_argument("--json", action="store_true", help="emit the report as JSON")

    p_fleet = sub.add_parser(
        "fleet",
        help="multiplex a fleet of boards on one event kernel and compare "
        "management policies (hit-rate / stall frontier)",
    )
    p_fleet.add_argument("--boards", type=int, default=100, help="boards in the fleet")
    p_fleet.add_argument("--requests", type=int, default=200, help="requests per board")
    p_fleet.add_argument(
        "--policy", type=_policy_list, default=["none", "fixed", "history"],
        metavar="P1,P2,...",
        help="comma-separated policy-registry names to frontier "
        f"(known: {', '.join(policy_names())})",
    )
    p_fleet.add_argument("--traffic", choices=TRAFFIC_PATTERNS, default="poisson")
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--regions", type=int, default=2, help="dynamic regions per board")
    p_fleet.add_argument("--modules", type=int, default=4, help="modules per region")
    p_fleet.add_argument(
        "--slots", type=int, default=None,
        help="override each policy bundle's region area budget (module slots)",
    )
    p_fleet.add_argument(
        "--mean-gap", type=int, default=200_000, metavar="NS",
        help="mean inter-request gap in virtual ns (default: 200000)",
    )
    p_fleet.add_argument(
        "--trace-boards", type=int, default=None, metavar="N",
        help="record full kernel traces for the first N boards "
        "(default: 3 when --trace is active, else 0)",
    )
    p_fleet.add_argument(
        "--engine", choices=ENGINES, default="fast",
        help="fleet engine: 'fast' (batched array-state, default) or "
        "'kernel' (reference event path); outcomes are digest-identical",
    )
    p_fleet.add_argument("--json", action="store_true", help="emit reports as JSON")
    p_fleet.add_argument(
        "--live", action="store_true",
        help="render a live per-policy dashboard (hit rate, stall p50/p99) "
        "after each policy completes",
    )
    p_fleet.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write the windowed telemetry store as JSON lines to PATH "
        "(replay it with 'repro tail PATH')",
    )
    p_fleet.add_argument(
        "--telemetry-window", type=int, default=5_000_000, metavar="NS",
        help="sim-time window width for --live/--telemetry (default: 5000000)",
    )
    _add_dashboard_args(p_fleet)
    _add_slo_args(p_fleet)

    p_tail = sub.add_parser(
        "tail",
        help="render a telemetry JSONL file (from fleet --telemetry) as the "
        "dashboard; --follow repaints as the file grows",
    )
    p_tail.add_argument("path", help="telemetry JSONL file to read")
    p_tail.add_argument(
        "-f", "--follow", action="store_true",
        help="keep watching the file and repaint on growth (Ctrl-C to stop)",
    )
    p_tail.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="poll interval in seconds with --follow (default: 1.0)",
    )
    _add_dashboard_args(p_tail)
    _add_slo_args(p_tail)

    p_check = sub.add_parser(
        "bench-check",
        help="benchmark-history regression gate: latest entry per lineage vs "
        "its trailing median; non-zero exit on regression",
    )
    p_check.add_argument(
        "--history", metavar="PATH", default=None,
        help="history JSONL (default: benchmarks/results/HISTORY.jsonl)",
    )
    p_check.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="regression threshold in percent (default: 10)",
    )
    p_check.add_argument(
        "--trailing", type=int, default=5, metavar="N",
        help="prior entries per lineage forming the baseline median (default: 5)",
    )
    p_check.add_argument(
        "--bench", action="append", default=None, metavar="NAME",
        help="restrict to one benchmark lineage (repeatable)",
    )
    p_check.add_argument(
        "--backfill", action="store_true",
        help="first append missing entries from committed BENCH_*.json files",
    )
    p_check.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR",
        help="directory scanned by --backfill (default: benchmarks/results)",
    )
    p_check.add_argument(
        "--check-after-backfill", action="store_true",
        help="with --backfill, also run the gate afterwards",
    )
    p_check.add_argument("--json", action="store_true", help="emit verdicts as JSON")
    return parser


def _add_dashboard_args(p) -> None:
    p.add_argument(
        "--live-windows", type=int, default=12, metavar="N",
        help="windows shown per sparkline in the dashboard (default: 12)",
    )
    p.add_argument(
        "--ascii", action="store_true",
        help="ASCII-only sparklines (no unicode blocks)",
    )


def _add_slo_args(p) -> None:
    p.add_argument(
        "--slo-hit-floor", type=float, default=None, metavar="RATE",
        help="SLO: per-window fleet hit-rate floor in [0,1] (breach exits 3)",
    )
    p.add_argument(
        "--slo-p99-ceiling", type=float, default=None, metavar="NS",
        help="SLO: per-window p99 stall-latency ceiling in ns (breach exits 3)",
    )
    p.add_argument(
        "--slo-min-count", type=int, default=1, metavar="N",
        help="skip windows with fewer demands than N (default: 1)",
    )


_COMMANDS = {
    "flow": _cmd_flow,
    "table1": _cmd_table1,
    "macrocode": _cmd_macrocode,
    "graph-dump": _cmd_graph_dump,
    "board-dump": _cmd_board_dump,
    "vhdl": _cmd_vhdl,
    "export": _cmd_export,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "linklevel": _cmd_linklevel,
    "trace": _cmd_trace,
    "search": _cmd_search,
    "fleet": _cmd_fleet,
    "tail": _cmd_tail,
    "bench-check": _cmd_bench_check,
}


def _run_traced(args, out, raw_argv: list[str]) -> int:
    """Run the command inside a fresh tracer + metrics registry, then export.

    The trace (Chrome trace-event JSON) and its run manifest (argv, git
    revision, seed, metrics snapshot) are written even when the command
    fails — a failing run is exactly the one worth inspecting.
    """
    trace_path = pathlib.Path(args.trace)
    tracer = Tracer()
    registry = MetricsRegistry()
    try:
        with use_tracer(tracer), use_metrics(registry):
            code = _COMMANDS[args.command](args, out)
    finally:
        write_chrome_trace(
            trace_path, tracer.spans,
            metadata={"trace_id": tracer.trace_id, "command": args.command},
            counters=registry,
        )
        manifest = build_manifest(
            argv=["repro", *raw_argv],
            seed=getattr(args, "seed", None),
            metrics=registry.snapshot(),
            extra={"command": args.command, "trace_file": str(trace_path)},
        )
        manifest_path = write_manifest(manifest_path_for(trace_path), manifest)
        print(
            f"wrote trace {trace_path} ({len(tracer.spans)} spans) "
            f"and manifest {manifest_path}",
            file=out,
        )
    return code


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    stream = out if out is not None else sys.stdout
    if getattr(args, "trace", None) and not getattr(args, "check", None):
        raw_argv = list(argv) if argv is not None else list(sys.argv[1:])
        return _run_traced(args, stream, raw_argv)
    return _COMMANDS[args.command](args, stream)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
