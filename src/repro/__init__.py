"""repro — reproduction of Berthelot, Nouvel & Houzet (IPDPS 2006).

"Partial and Dynamic reconfiguration of FPGAs: a top down design methodology
for an automatic implementation."

The package implements, in pure Python, the complete top-down design flow the
paper describes, together with executable models of every hardware substrate
the paper relies on:

- :mod:`repro.dfg` — algorithm data-flow graphs (operations, conditionals).
- :mod:`repro.arch` — architecture graphs (operators, media, devices, boards).
- :mod:`repro.aaa` — AAA adequation: mapping + scheduling heuristics.
- :mod:`repro.executive` — synchronized executive macro-code and interpreter.
- :mod:`repro.codegen` — VHDL generation for static and dynamic parts.
- :mod:`repro.fabric` — Virtex-II fabric model, modular floorplanning,
  partial bitstreams.
- :mod:`repro.reconfig` — runtime reconfiguration manager, port protocols,
  configuration prefetching.
- :mod:`repro.mccdma` — MC-CDMA transmitter case study (signal processing).
- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.flows` — end-to-end flow orchestration and reporting.

Quickstart::

    from repro.flows import DesignFlow
    from repro.mccdma.casestudy import build_mccdma_design

    flow = DesignFlow.from_design(build_mccdma_design())
    result = flow.run()
    print(result.report())

Library code never writes to stdout: flow progress goes to the standard
``logging`` channel ``repro.flows`` (silent by default — configure logging
or pass a :class:`repro.flows.FlowObserver` to see it).
"""

import logging as _logging

__version__ = "1.0.0"

__all__ = ["__version__"]

# Standard library etiquette: no output unless the application opts in.
_logging.getLogger("repro").addHandler(_logging.NullHandler())
