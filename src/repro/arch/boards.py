"""Ready-made platform descriptions.

:func:`sundance_board` reproduces the paper's prototyping platform: "This
board is composed of one DSP C6201 and one FPGA Xilinx Xc2v2000", with the
FPGA split into a static part (F1) and one runtime-reconfigurable part (D1)
connected by an internal link (IL), and the SHB bus between DSP and FPGA.

:func:`dual_region_board` exercises the conclusion's extension: "complex
design and architecture can support more than one dynamic part."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.graph import ArchitectureGraph
from repro.arch.media import Medium, MediumKind
from repro.arch.operator import Operator, OperatorKind
from repro.dfg.library import DSP_CLASS, FPGA_CLASS
from repro.fabric.device import VirtexIIDevice, XC2V2000

__all__ = ["Board", "sundance_board", "dual_region_board"]

#: TI TMS320C6201 clock on the Sundance module.
C6201_CLOCK_MHZ = 200.0
#: Clock of the generated FPGA design (conservative Virtex-II speed).
FPGA_CLOCK_MHZ = 50.0
#: Sundance High-speed Bus: 32-bit parallel; sustained payload bandwidth.
SHB_BANDWIDTH_MBPS = 160.0
SHB_LATENCY_NS = 500
#: On-chip internal link between static and dynamic parts (bus-macro path).
IL_BANDWIDTH_MBPS = 400.0
IL_LATENCY_NS = 40


@dataclass
class Board:
    """A platform: architecture graph plus physical device objects."""

    name: str
    architecture: ArchitectureGraph
    fpga_devices: dict[str, VirtexIIDevice] = field(default_factory=dict)

    def fpga_device_of(self, operator_name: str) -> VirtexIIDevice:
        op = self.architecture.operator(operator_name)
        try:
            return self.fpga_devices[op.device]
        except KeyError:
            raise KeyError(f"operator {operator_name!r} is not on a modelled FPGA") from None

    @property
    def dsp(self) -> Operator:
        procs = self.architecture.processors()
        if not procs:
            raise ValueError(f"board {self.name!r} has no processor")
        return procs[0]

    def regions(self) -> list[str]:
        return [o.region for o in self.architecture.dynamic_operators() if o.region]


def sundance_board(
    n_dynamic: int = 1,
    fpga_clock_mhz: float = FPGA_CLOCK_MHZ,
    device: VirtexIIDevice = XC2V2000,
) -> Board:
    """The case-study platform (Fig. 1 / Fig. 4 of the paper).

    ``n_dynamic`` dynamic operators D1..Dn are created on the same FPGA,
    each with its own region and a shared internal link to the static part.
    """
    if n_dynamic < 1:
        raise ValueError("need at least one dynamic operator")
    arch = ArchitectureGraph("sundance_smt")
    dsp = arch.add_operator(
        Operator("DSP", OperatorKind.PROCESSOR, DSP_CLASS, C6201_CLOCK_MHZ, device="c6201")
    )
    f1 = arch.add_operator(
        Operator("F1", OperatorKind.FPGA_STATIC, FPGA_CLASS, fpga_clock_mhz, device=device.name)
    )
    shb = arch.add_medium(Medium("SHB", MediumKind.BUS, SHB_BANDWIDTH_MBPS, SHB_LATENCY_NS))
    il = arch.add_medium(Medium("IL", MediumKind.INTERNAL, IL_BANDWIDTH_MBPS, IL_LATENCY_NS))
    arch.connect(dsp, shb)
    arch.connect(f1, shb)
    arch.connect(f1, il)
    for i in range(1, n_dynamic + 1):
        dyn = arch.add_operator(
            Operator(
                f"D{i}",
                OperatorKind.FPGA_DYNAMIC,
                FPGA_CLASS,
                fpga_clock_mhz,
                device=device.name,
                region=f"D{i}",
            )
        )
        arch.connect(dyn, il)
    arch.validate()
    return Board(name="sundance", architecture=arch, fpga_devices={device.name: device})


def dual_region_board(device: VirtexIIDevice = XC2V2000) -> Board:
    """Two dynamic regions on one FPGA (the paper's multi-region extension)."""
    board = sundance_board(n_dynamic=2, device=device)
    board.name = "sundance_dual"
    return board


def standalone_fpga_board(
    n_dynamic: int = 1,
    fpga_clock_mhz: float = FPGA_CLOCK_MHZ,
    device: VirtexIIDevice = XC2V2000,
) -> Board:
    """An FPGA-only platform (no DSP): the pure Fig. 2a deployment where the
    static part hosts everything, including the configuration manager.

    Algorithm graphs targeting this board must not contain DSP-only kinds;
    the cost model rejects such mappings and adequation fails loudly.
    """
    if n_dynamic < 1:
        raise ValueError("need at least one dynamic operator")
    arch = ArchitectureGraph("standalone_fpga")
    f1 = arch.add_operator(
        Operator("F1", OperatorKind.FPGA_STATIC, FPGA_CLASS, fpga_clock_mhz, device=device.name)
    )
    il = arch.add_medium(Medium("IL", MediumKind.INTERNAL, IL_BANDWIDTH_MBPS, IL_LATENCY_NS))
    arch.connect(f1, il)
    for i in range(1, n_dynamic + 1):
        dyn = arch.add_operator(
            Operator(
                f"D{i}",
                OperatorKind.FPGA_DYNAMIC,
                FPGA_CLASS,
                fpga_clock_mhz,
                device=device.name,
                region=f"D{i}",
            )
        )
        arch.connect(dyn, il)
    arch.validate()
    return Board(name="standalone_fpga", architecture=arch, fpga_devices={device.name: device})
