"""Architecture graphs (the SynDEx *architecture graph*).

"Architecture is also modeled by a graph where the vertices are operators
(e.g. processors, DSP, FPGA) or media and edges are connections between
them."  Following the paper's Fig. 1, runtime-reconfigurable parts of an
FPGA (D1, D2) and fixed parts (F1) are first-class hardware operators, and
an internal link (IL) connects them.

- :mod:`repro.arch.operator` — operator vertices,
- :mod:`repro.arch.media` — communication media vertices,
- :mod:`repro.arch.graph` — the bipartite operator/medium graph with routing,
- :mod:`repro.arch.boards` — ready-made platforms, including the Sundance
  C6201 + XC2V2000 board of the case study.
"""

from repro.arch.operator import Operator, OperatorKind
from repro.arch.media import Medium, MediumKind
from repro.arch.graph import ArchitectureGraph, ArchitectureError, Route
from repro.arch.boards import Board, dual_region_board, standalone_fpga_board, sundance_board

__all__ = [
    "Operator",
    "OperatorKind",
    "Medium",
    "MediumKind",
    "ArchitectureGraph",
    "ArchitectureError",
    "Route",
    "Board",
    "sundance_board",
    "dual_region_board",
    "standalone_fpga_board",
]
