"""Operator vertices of the architecture graph.

"Operators have no internal parallelism computation available but the
architecture exhibits the potential parallelism" — an operator executes one
operation at a time; parallelism comes from having several operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["OperatorKind", "Operator"]


class OperatorKind(enum.Enum):
    """The three operator roles of the paper's platform model."""

    PROCESSOR = "processor"
    FPGA_STATIC = "fpga_static"
    FPGA_DYNAMIC = "fpga_dynamic"


@dataclass(frozen=True)
class Operator:
    """A sequential execution resource.

    ``operator_class`` keys into the operation library's duration tables
    (e.g. ``"c6x_dsp"``, ``"virtex2"``).  ``device`` names the physical chip
    the operator lives on — static and dynamic FPGA operators share one
    device.  For :attr:`OperatorKind.FPGA_DYNAMIC`, ``region`` names the
    reconfigurable region the floorplanner will place.
    """

    name: str
    kind: OperatorKind
    operator_class: str
    clock_mhz: float
    device: str
    region: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")
        if self.clock_mhz <= 0:
            raise ValueError(f"operator {self.name!r}: clock must be positive")
        if self.kind is OperatorKind.FPGA_DYNAMIC and not self.region:
            raise ValueError(f"dynamic operator {self.name!r} must name its region")
        if self.kind is not OperatorKind.FPGA_DYNAMIC and self.region:
            raise ValueError(f"non-dynamic operator {self.name!r} must not name a region")

    @property
    def is_reconfigurable(self) -> bool:
        return self.kind is OperatorKind.FPGA_DYNAMIC

    @property
    def is_processor(self) -> bool:
        return self.kind is OperatorKind.PROCESSOR

    def cycle_time_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1_000.0 / self.clock_mhz

    def duration_ns(self, cycles: int) -> int:
        """Integer-tick duration of ``cycles`` cycles (ceil)."""
        from repro.sim.units import cycles_to_ns

        return cycles_to_ns(cycles, self.clock_mhz)

    def __str__(self) -> str:
        tag = f"/{self.region}" if self.region else ""
        return f"{self.name}({self.kind.value}{tag}@{self.clock_mhz:g}MHz)"
