"""The architecture graph: operators and media with connection edges.

The graph is bipartite — operators connect to media, never directly to each
other.  A :class:`Route` is the sequence of media a transfer crosses between
two operators; the adequation cost model charges each hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.arch.media import Medium
from repro.arch.operator import Operator

__all__ = ["ArchitectureError", "Route", "ArchitectureGraph"]


class ArchitectureError(ValueError):
    """Raised for malformed architectures or impossible routes."""


@dataclass(frozen=True, slots=True)
class Route:
    """A path between two operators through one or more media."""

    src: Operator
    dst: Operator
    media: tuple[Medium, ...]

    @property
    def is_local(self) -> bool:
        """True when src and dst are the same operator (no transfer needed)."""
        return not self.media

    def transfer_ns(self, nbytes: int) -> int:
        """End-to-end time for ``nbytes``, store-and-forward across hops."""
        return sum(m.transfer_ns(nbytes) for m in self.media)

    def __str__(self) -> str:
        if self.is_local:
            return f"{self.src.name} (local)"
        hops = " -> ".join(m.name for m in self.media)
        return f"{self.src.name} -[{hops}]-> {self.dst.name}"


class ArchitectureGraph:
    """Operators + media + connections, with shortest-route queries."""

    def __init__(self, name: str = "architecture"):
        self.name = name
        self._operators: dict[str, Operator] = {}
        self._media: dict[str, Medium] = {}
        self._links: set[tuple[str, str]] = set()  # (operator, medium)

    # -- construction ------------------------------------------------------------

    def add_operator(self, op: Operator) -> Operator:
        if op.name in self._operators or op.name in self._media:
            raise ArchitectureError(f"duplicate vertex name {op.name!r}")
        self._operators[op.name] = op
        return op

    def add_medium(self, medium: Medium) -> Medium:
        if medium.name in self._media or medium.name in self._operators:
            raise ArchitectureError(f"duplicate vertex name {medium.name!r}")
        self._media[medium.name] = medium
        return medium

    def connect(self, operator: Operator | str, medium: Medium | str) -> None:
        """Attach an operator to a medium."""
        op = self.operator(operator if isinstance(operator, str) else operator.name)
        med = self.medium(medium if isinstance(medium, str) else medium.name)
        self._links.add((op.name, med.name))

    # -- queries --------------------------------------------------------------------

    def operator(self, name: str) -> Operator:
        try:
            return self._operators[name]
        except KeyError:
            raise ArchitectureError(f"no operator {name!r} in architecture {self.name!r}") from None

    def medium(self, name: str) -> Medium:
        try:
            return self._media[name]
        except KeyError:
            raise ArchitectureError(f"no medium {name!r} in architecture {self.name!r}") from None

    @property
    def operators(self) -> list[Operator]:
        return list(self._operators.values())

    @property
    def media(self) -> list[Medium]:
        return list(self._media.values())

    def operators_on(self, medium: Medium | str) -> list[Operator]:
        med_name = medium if isinstance(medium, str) else medium.name
        self.medium(med_name)
        return [self._operators[o] for o, m in sorted(self._links) if m == med_name]

    def media_of(self, operator: Operator | str) -> list[Medium]:
        op_name = operator if isinstance(operator, str) else operator.name
        self.operator(op_name)
        return [self._media[m] for o, m in sorted(self._links) if o == op_name]

    def device_neutral(self) -> "ArchitectureGraph":
        """A copy with every operator's ``device`` field blanked.

        The scheduling stages (adequation, refinement, VHDL generation) are
        cached under keys that deliberately exclude operator devices — see
        :func:`repro.flows.pipeline.fingerprint_architecture` — so design
        points differing only in device share those artifacts.  The shared
        artifact must then not *embed* a device name either, or its bytes
        would depend on which design point happened to compute it first.
        """
        import copy
        import dataclasses

        neutral = copy.deepcopy(self)
        neutral._operators = {
            name: dataclasses.replace(op, device="")
            for name, op in neutral._operators.items()
        }
        return neutral

    def __getstate__(self) -> dict:
        # Pickle ``_links`` in sorted order: set iteration depends on the
        # per-process string hash seed, and cached artifacts must serialize
        # to identical bytes no matter which worker produced them.
        state = self.__dict__.copy()
        state["_links"] = sorted(self._links)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._links = set(state["_links"])

    def processors(self) -> list[Operator]:
        return [o for o in self._operators.values() if o.is_processor]

    def dynamic_operators(self) -> list[Operator]:
        return [o for o in self._operators.values() if o.is_reconfigurable]

    def operators_of_device(self, device: str) -> list[Operator]:
        return [o for o in self._operators.values() if o.device == device]

    # -- routing ---------------------------------------------------------------------

    def _nx(self) -> nx.Graph:
        g = nx.Graph()
        for o in self._operators:
            g.add_node(o, vertex="operator")
        for m in self._media:
            g.add_node(m, vertex="medium")
        for o, m in self._links:
            g.add_edge(o, m)
        return g

    def route(self, src: Operator | str, dst: Operator | str) -> Route:
        """The shortest route (fewest media hops) between two operators."""
        src_op = self.operator(src if isinstance(src, str) else src.name)
        dst_op = self.operator(dst if isinstance(dst, str) else dst.name)
        if src_op.name == dst_op.name:
            return Route(src_op, dst_op, ())
        g = self._nx()
        try:
            path = nx.shortest_path(g, src_op.name, dst_op.name)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise ArchitectureError(
                f"no route between {src_op.name!r} and {dst_op.name!r}"
            ) from None
        media = tuple(self._media[n] for n in path if n in self._media)
        return Route(src_op, dst_op, media)

    def validate(self) -> None:
        """Check the platform is usable: non-empty and fully connected."""
        problems = []
        if not self._operators:
            problems.append("architecture has no operators")
        for m in self._media.values():
            attached = self.operators_on(m)
            if len(attached) < 2:
                problems.append(f"medium {m.name!r} connects fewer than two operators")
        ops = list(self._operators)
        if len(ops) > 1:
            g = self._nx()
            for other in ops[1:]:
                if not nx.has_path(g, ops[0], other):
                    problems.append(f"operator {other!r} unreachable from {ops[0]!r}")
        if problems:
            raise ArchitectureError("; ".join(problems))

    def summary(self) -> str:
        lines = [f"ArchitectureGraph {self.name!r}"]
        for o in self._operators.values():
            media = ", ".join(m.name for m in self.media_of(o)) or "unconnected"
            lines.append(f"  {o} on [{media}]")
        for m in self._media.values():
            lines.append(f"  {m}")
        return "\n".join(lines)
