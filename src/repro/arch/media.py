"""Communication media vertices of the architecture graph."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.units import transfer_time_ns

__all__ = ["MediumKind", "Medium"]


class MediumKind(enum.Enum):
    """Physical flavour of a medium."""

    BUS = "bus"  # shared parallel bus, e.g. the Sundance SHB
    POINT_TO_POINT = "p2p"  # dedicated link
    INTERNAL = "internal"  # on-chip wiring between FPGA parts (IL)


@dataclass(frozen=True)
class Medium:
    """A communication resource.

    Transfers are serialized on a medium (it is an exclusive resource in the
    executive), and each transfer costs ``latency_ns`` of setup plus the
    bandwidth-limited payload time.
    """

    name: str
    kind: MediumKind
    bandwidth_mbps: float  # sustained megabytes per second
    latency_ns: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("medium name must be non-empty")
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"medium {self.name!r}: bandwidth must be positive")
        if self.latency_ns < 0:
            raise ValueError(f"medium {self.name!r}: latency must be >= 0")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_mbps * 1_000_000.0

    def transfer_ns(self, nbytes: int) -> int:
        """Time to move ``nbytes`` across this medium, setup included."""
        if nbytes == 0:
            return self.latency_ns
        return self.latency_ns + transfer_time_ns(nbytes, self.bandwidth_bytes_per_s)

    def __str__(self) -> str:
        return f"{self.name}({self.kind.value}, {self.bandwidth_mbps:g} MB/s)"
