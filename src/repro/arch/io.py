"""Architecture-graph and board serialization (JSON).

Counterpart of :mod:`repro.dfg.io` for the platform side: operators, media,
connections and the FPGA device references of a :class:`~repro.arch.boards.Board`
round-trip through a stable JSON document, so platform descriptions can live
in files next to the algorithm graphs.
"""

from __future__ import annotations

import json

from repro.arch.boards import Board
from repro.arch.graph import ArchitectureGraph
from repro.arch.media import Medium, MediumKind
from repro.arch.operator import Operator, OperatorKind
from repro.fabric.device import device_by_name

__all__ = ["ArchFormatError", "dumps", "loads", "save", "load"]

FORMAT_VERSION = 1


class ArchFormatError(ValueError):
    """Malformed serialized architecture/board."""


def to_dict(board: Board) -> dict:
    arch = board.architecture
    operators = [
        {
            "name": op.name,
            "kind": op.kind.value,
            "operator_class": op.operator_class,
            "clock_mhz": op.clock_mhz,
            "device": op.device,
            **({"region": op.region} if op.region else {}),
        }
        for op in arch.operators
    ]
    media = [
        {
            "name": m.name,
            "kind": m.kind.value,
            "bandwidth_mbps": m.bandwidth_mbps,
            "latency_ns": m.latency_ns,
        }
        for m in arch.media
    ]
    links = []
    for medium in arch.media:
        for op in arch.operators_on(medium):
            links.append({"operator": op.name, "medium": medium.name})
    return {
        "format": "repro-board",
        "version": FORMAT_VERSION,
        "name": board.name,
        "architecture_name": arch.name,
        "operators": operators,
        "media": media,
        "links": links,
        "fpga_devices": sorted(board.fpga_devices),
    }


def from_dict(data: dict) -> Board:
    if data.get("format") != "repro-board":
        raise ArchFormatError("not a repro board document")
    if data.get("version") != FORMAT_VERSION:
        raise ArchFormatError(f"unsupported format version {data.get('version')!r}")
    arch = ArchitectureGraph(data.get("architecture_name", "architecture"))
    for op_data in data.get("operators", []):
        try:
            kind = OperatorKind(op_data["kind"])
        except ValueError:
            raise ArchFormatError(f"unknown operator kind {op_data.get('kind')!r}") from None
        arch.add_operator(
            Operator(
                name=op_data["name"],
                kind=kind,
                operator_class=op_data["operator_class"],
                clock_mhz=op_data["clock_mhz"],
                device=op_data["device"],
                region=op_data.get("region"),
            )
        )
    for m_data in data.get("media", []):
        try:
            kind = MediumKind(m_data["kind"])
        except ValueError:
            raise ArchFormatError(f"unknown medium kind {m_data.get('kind')!r}") from None
        arch.add_medium(
            Medium(
                name=m_data["name"],
                kind=kind,
                bandwidth_mbps=m_data["bandwidth_mbps"],
                latency_ns=m_data.get("latency_ns", 0),
            )
        )
    for link in data.get("links", []):
        arch.connect(link["operator"], link["medium"])
    devices = {}
    for name in data.get("fpga_devices", []):
        try:
            devices[name] = device_by_name(name)
        except KeyError:
            raise ArchFormatError(f"unknown FPGA device {name!r}") from None
    arch.validate()
    return Board(name=data.get("name", "board"), architecture=arch, fpga_devices=devices)


def dumps(board: Board, indent: int = 2) -> str:
    return json.dumps(to_dict(board), indent=indent, sort_keys=True)


def loads(text: str) -> Board:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise ArchFormatError(f"invalid JSON: {err}") from err
    return from_dict(data)


def save(board: Board, path) -> None:
    from pathlib import Path

    Path(path).write_text(dumps(board))


def load(path) -> Board:
    from pathlib import Path

    return loads(Path(path).read_text())
