"""AAA adequation: mapping + scheduling of the algorithm onto the architecture.

"Adequation consists in performing the mapping and scheduling of the
operations and data transfers onto the operators and the communication media.
It is carried out by a heuristic which takes into account durations of
computations and inter-component communications."

- :mod:`repro.aaa.costs` — the duration/cost model,
- :mod:`repro.aaa.mapping` — mapping constraints and candidate enumeration,
- :mod:`repro.aaa.schedule` — the schedule data model and its validator,
- :mod:`repro.aaa.scheduler` — the SynDEx-like schedule-pressure heuristic,
- :mod:`repro.aaa.recon_aware` — the reconfiguration-aware extension the
  paper's conclusion calls for (reconfiguration as sequence-dependent setup
  time, with prefetch insertion),
- :mod:`repro.aaa.baselines` — comparison schedulers for the benchmarks,
- :mod:`repro.aaa.adequation` — the user-facing entry point.
"""

from repro.aaa.costs import CostModel, CostError
from repro.aaa.mapping import MappingConstraints, MappingError
from repro.aaa.schedule import (
    Schedule,
    ScheduleValidationError,
    ScheduledOp,
    ScheduledReconfig,
    ScheduledTransfer,
)
from repro.aaa.scheduler import SchedulerStats, SynDExScheduler
from repro.aaa.insertion import InsertionScheduler
from repro.aaa.recon_aware import ReconfigAwareScheduler
from repro.aaa.baselines import EarliestFinishScheduler, RandomMappingScheduler
from repro.aaa.adequation import AdequationResult, adequate
from repro.aaa.analysis import ScheduleAnalysis, analyze

__all__ = [
    "CostModel",
    "CostError",
    "MappingConstraints",
    "MappingError",
    "Schedule",
    "ScheduleValidationError",
    "ScheduledOp",
    "ScheduledReconfig",
    "ScheduledTransfer",
    "SchedulerStats",
    "SynDExScheduler",
    "InsertionScheduler",
    "ReconfigAwareScheduler",
    "EarliestFinishScheduler",
    "RandomMappingScheduler",
    "AdequationResult",
    "adequate",
    "ScheduleAnalysis",
    "analyze",
]
