"""Mapping constraints: pinning operations to operators.

The paper's flow lets the designer force placements ("automatic or manual
partitioning of an application"): the DSP runs the bit source and the SNR
selector, the DAC interface lives in the static part, and the conditioned
modulation alternatives go to the dynamic operator.  A
:class:`MappingConstraints` object carries such decisions into the
schedulers; anything unpinned is decided by the heuristic.
"""

from __future__ import annotations

from typing import Optional

from repro.aaa.costs import CostModel
from repro.arch.operator import Operator
from repro.dfg.operations import Operation

__all__ = ["MappingError", "MappingConstraints"]


class MappingError(ValueError):
    """Raised for contradictory or infeasible mapping constraints."""


class MappingConstraints:
    """Pinned placements plus per-operation operator filters."""

    def __init__(self) -> None:
        self._pins: dict[str, str] = {}  # operation name -> operator name
        self._forbidden: dict[str, set[str]] = {}  # operation name -> operator names

    def pin(self, op: Operation | str, operator: Operator | str) -> "MappingConstraints":
        """Force ``op`` onto ``operator`` (chainable)."""
        op_name = op if isinstance(op, str) else op.name
        operator_name = operator if isinstance(operator, str) else operator.name
        existing = self._pins.get(op_name)
        if existing is not None and existing != operator_name:
            raise MappingError(
                f"operation {op_name!r} already pinned to {existing!r}, cannot pin to {operator_name!r}"
            )
        self._pins[op_name] = operator_name
        return self

    def forbid(self, op: Operation | str, operator: Operator | str) -> "MappingConstraints":
        """Disallow ``op`` on ``operator`` (chainable)."""
        op_name = op if isinstance(op, str) else op.name
        operator_name = operator if isinstance(operator, str) else operator.name
        if self._pins.get(op_name) == operator_name:
            raise MappingError(f"operation {op_name!r} is pinned to {operator_name!r}, cannot forbid it")
        self._forbidden.setdefault(op_name, set()).add(operator_name)
        return self

    def pinned_operator(self, op: Operation) -> Optional[str]:
        return self._pins.get(op.name)

    def allows(self, op: Operation, operator: Operator) -> bool:
        pinned = self._pins.get(op.name)
        if pinned is not None:
            return operator.name == pinned
        return operator.name not in self._forbidden.get(op.name, ())

    def candidates(self, op: Operation, costs: CostModel) -> list[Operator]:
        """Feasible operators for ``op`` under both costs and constraints."""
        out = [p for p in costs.candidates(op) if self.allows(op, p)]
        if not out:
            pinned = self._pins.get(op.name)
            if pinned is not None:
                raise MappingError(
                    f"operation {op.name!r} pinned to {pinned!r}, which cannot host kind {op.kind!r}"
                )
            raise MappingError(f"operation {op.name!r} has no feasible operator under constraints")
        return out

    def snapshot(self) -> dict:
        """JSON-safe view of every pin and filter (stable across processes).

        The flow pipeline fingerprints constraints through this, so two
        :class:`MappingConstraints` built in any order but carrying the same
        decisions address the same cached artefacts."""
        return {
            "pins": dict(sorted(self._pins.items())),
            "forbidden": {op: sorted(ops) for op, ops in sorted(self._forbidden.items())},
        }

    def __len__(self) -> int:
        return len(self._pins) + sum(len(v) for v in self._forbidden.values())
