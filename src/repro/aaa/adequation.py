"""User-facing adequation entry point."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Type

from repro.aaa.costs import CostModel
from repro.aaa.mapping import MappingConstraints
from repro.aaa.recon_aware import ReconfigAwareScheduler
from repro.aaa.schedule import Schedule
from repro.aaa.scheduler import ListSchedulerBase
from repro.arch.graph import ArchitectureGraph
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.dfg.validate import validate_graph

__all__ = ["AdequationResult", "adequate"]


@dataclass
class AdequationResult:
    """Schedule plus the models it was computed against."""

    schedule: Schedule
    costs: CostModel
    scheduler_name: str
    #: Placement-evaluation accounting of the run that produced the
    #: schedule (see :class:`repro.aaa.scheduler.SchedulerStats`); empty for
    #: results constructed by hand.
    scheduler_stats: dict = field(default_factory=dict)

    @property
    def makespan_ns(self) -> int:
        # Schedule.makespan() reads the maintained end frontier — O(1) — so
        # report()/iteration_period_ns/throughput can call it freely instead
        # of rebuilding three end-lists per call.
        return self.schedule.makespan()

    @property
    def iteration_period_ns(self) -> int:
        """The synchronized executive repeats the schedule back to back, so
        the steady-state iteration period equals the makespan."""
        return self.makespan_ns

    def throughput_iterations_per_s(self) -> float:
        period = self.iteration_period_ns
        return 1e9 / period if period else float("inf")

    def report(self) -> str:
        lines = [
            f"Adequation by {self.scheduler_name}: makespan {self.makespan_ns} ns "
            f"({self.throughput_iterations_per_s():.1f} iterations/s)",
            self.schedule.table(),
        ]
        return "\n".join(lines)


def adequate(
    graph: AlgorithmGraph,
    architecture: ArchitectureGraph,
    library: OperationLibrary,
    constraints: Optional[MappingConstraints] = None,
    scheduler: Type[ListSchedulerBase] = ReconfigAwareScheduler,
    reconfig_ns: Optional[dict[str, int]] = None,
    validate: bool = True,
    **scheduler_kwargs,
) -> AdequationResult:
    """Run the full adequation: validate, schedule, check the result.

    ``scheduler`` selects the heuristic (default: the reconfiguration-aware
    extension); ``reconfig_ns`` installs per-region reconfiguration
    latencies (from the floorplan) into the cost model.
    """
    if validate:
        validate_graph(graph, library)
        architecture.validate()
    costs = CostModel(graph, architecture, library, reconfig_ns=reconfig_ns)
    sched_obj = scheduler(costs, constraints, **scheduler_kwargs)
    schedule = sched_obj.run()
    schedule.validate(graph, architecture)
    return AdequationResult(
        schedule=schedule,
        costs=costs,
        scheduler_name=type(sched_obj).__name__,
        scheduler_stats=sched_obj.stats.to_dict(),
    )
