"""Duration and cost model used by the adequation heuristics."""

from __future__ import annotations

from typing import Optional

from repro.arch.graph import ArchitectureGraph, Route
from repro.arch.operator import Operator, OperatorKind
from repro.dfg.graph import AlgorithmGraph, Edge
from repro.dfg.library import OperationLibrary
from repro.dfg.operations import Operation

__all__ = ["CostError", "CostModel"]


class CostError(ValueError):
    """Raised when a cost is requested for an infeasible mapping."""


class CostModel:
    """Durations of computations, communications and reconfigurations.

    Computation durations come from the operation library (cycles) scaled by
    the operator clock.  Communication durations come from the media along
    the route.  Reconfiguration durations are provided per dynamic operator
    (the design flow computes them from the partial-bitstream size and the
    configuration-port bandwidth; a default is used before floorplanning).
    """

    #: Pre-floorplan estimate of one partial reconfiguration, in ns (≈4 ms,
    #: the paper's measured value for the 8 % module).
    DEFAULT_RECONFIG_NS = 4_000_000

    def __init__(
        self,
        graph: AlgorithmGraph,
        architecture: ArchitectureGraph,
        library: OperationLibrary,
        reconfig_ns: Optional[dict[str, int]] = None,
    ):
        self.graph = graph
        self.architecture = architecture
        self.library = library
        #: region name -> reconfiguration latency (ns)
        self.reconfig_ns = dict(reconfig_ns or {})
        self._route_cache: dict[tuple[str, str], Route] = {}
        # All memo keys are *names*: costs must not distinguish resident
        # objects from cache-round-tripped equal copies.
        self._duration_cache: dict[tuple[str, str], int] = {}
        self._best_duration_cache: dict[str, int] = {}
        self._candidates_cache: dict[str, list[Operator]] = {}

    def __getstate__(self) -> dict:
        # Memoized lookups are derived state: keep them out of pickled
        # artifacts so the cached bytes do not depend on which queries a
        # particular run happened to make.
        state = self.__dict__.copy()
        state["_route_cache"] = {}
        state["_duration_cache"] = {}
        state["_best_duration_cache"] = {}
        state["_candidates_cache"] = {}
        return state

    # -- mapping feasibility --------------------------------------------------

    def can_map(self, op: Operation, operator: Operator) -> bool:
        """Feasibility of running ``op`` on ``operator``.

        Dynamic FPGA operators host only *conditioned* operations: an
        unconditioned operation would occupy the region forever, defeating
        reconfiguration (the paper maps exactly the conditioned modulation
        alternatives to Op_Dyn).
        """
        if not self.library.supports(op.kind, operator.operator_class):
            return False
        if operator.kind is OperatorKind.FPGA_DYNAMIC and not op.is_conditioned:
            return False
        return True

    def candidates(self, op: Operation) -> list[Operator]:
        """All operators that can host ``op`` (memoized per operation name)."""
        cached = self._candidates_cache.get(op.name)
        if cached is None:
            cached = [p for p in self.architecture.operators if self.can_map(op, p)]
            self._candidates_cache[op.name] = cached
        return list(cached)

    # -- durations ----------------------------------------------------------------

    def duration(self, op: Operation, operator: Operator) -> int:
        """Execution time of ``op`` on ``operator`` in ns (memoized)."""
        key = (op.name, operator.name)
        cached = self._duration_cache.get(key)
        if cached is not None:
            return cached
        if not self.can_map(op, operator):
            raise CostError(f"operation {op.name!r} cannot run on operator {operator.name!r}")
        cycles = self.library.cycles(op.kind, operator.operator_class)
        value = operator.duration_ns(cycles)
        self._duration_cache[key] = value
        return value

    def best_duration(self, op: Operation) -> int:
        """The fastest feasible execution time of ``op`` (used for ranks)."""
        cached = self._best_duration_cache.get(op.name)
        if cached is not None:
            return cached
        durations = [self.duration(op, p) for p in self.candidates(op)]
        if not durations:
            raise CostError(f"operation {op.name!r} has no feasible operator")
        value = min(durations)
        self._best_duration_cache[op.name] = value
        return value

    def route(self, src: Operator, dst: Operator) -> Route:
        key = (src.name, dst.name)
        if key not in self._route_cache:
            self._route_cache[key] = self.architecture.route(src, dst)
        return self._route_cache[key]

    def comm_duration(self, edge: Edge, src_op: Operator, dst_op: Operator) -> int:
        """Transfer time for ``edge`` between two placed operations, in ns."""
        route = self.route(src_op, dst_op)
        return route.transfer_ns(edge.size_bytes)

    # -- reconfiguration --------------------------------------------------------------

    def reconfiguration_ns(self, operator: Operator) -> int:
        """Latency of swapping the module configured on a dynamic operator."""
        if not operator.is_reconfigurable:
            raise CostError(f"operator {operator.name!r} is not reconfigurable")
        assert operator.region is not None
        return self.reconfig_ns.get(operator.region, self.DEFAULT_RECONFIG_NS)

    def set_reconfiguration_ns(self, region: str, latency_ns: int) -> None:
        """Install a floorplan-derived latency for ``region``."""
        if latency_ns < 0:
            raise CostError("reconfiguration latency must be >= 0")
        self.reconfig_ns[region] = latency_ns
