"""List schedulers: shared machinery plus the SynDEx-like heuristic.

The SynDEx heuristic is a greedy *schedule-pressure* list scheduler: at each
step it evaluates every ready operation on every feasible operator, keeps the
best placement per operation (earliest completion, communications included),
then commits the operation whose best placement is most critical — i.e.
whose completion plus remaining critical path to the sinks is largest.

That inner loop is the hottest path in the repo, and it used to re-filter
and re-sort the entire committed schedule for every candidate evaluation —
O(n³ log n) over the whole run.  The machinery here is now incremental:

- :class:`~repro.aaa.schedule.Schedule` maintains sorted per-resource
  timelines, so timeline queries are lookups, not sweeps;
- ready-time **frontiers** are kept per operator (max committed end per
  condition-case) and per medium (max committed end per source/destination
  condition pair), making ``_operator_ready`` / ``_medium_ready`` O(#cases)
  instead of O(#committed);
- exclusivity checks go through a factored condition index (operation name →
  ``(group, case)``), the scheduler-side counterpart of the O(1)
  :meth:`repro.dfg.graph.AlgorithmGraph.exclusive`;
- candidate :class:`Placement`\\ s are **memoized across commit steps** with
  dirty-set invalidation: committing an operation only invalidates cached
  placements that touch the committed operator, the media its transfers
  used, or the operation itself.

Every cached value is a pure function of state that the dirty sets track,
so the produced schedules are **byte-identical** to the naive reference
path — pass ``incremental=False`` to any scheduler to get the original
re-scanning implementation, which the digest property tests compare against.
All operator/medium bookkeeping is keyed by *name*, never object identity,
so graphs and schedules that round-tripped through the artifact cache
behave exactly like resident ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.aaa.costs import CostModel
from repro.aaa.mapping import MappingConstraints
from repro.aaa.schedule import Schedule, ScheduledOp, ScheduledReconfig, ScheduledTransfer
from repro.arch.operator import Operator
from repro.dfg.graph import AlgorithmGraph, Edge
from repro.dfg.operations import Operation

__all__ = ["Placement", "SchedulerStats", "ListSchedulerBase", "SynDExScheduler"]

#: Condition key of an operation: ``None`` or ``(group name, case value)``.
CondKey = Optional[tuple[str, Hashable]]


def _excl(a: CondKey, b: CondKey) -> bool:
    """Exclusivity on condition keys (mirrors ``AlgorithmGraph.exclusive``)."""
    return a is not None and b is not None and a[0] == b[0] and a[1] != b[1]


_EMPTY_DICT: dict = {}


@dataclass
class Placement:
    """A tentative placement of one operation, transfers included."""

    op: Operation
    operator: Operator
    start: int
    end: int
    transfers: list[ScheduledTransfer]
    reconfig: Optional["ScheduledReconfig"] = None


@dataclass
class SchedulerStats:
    """Placement-evaluation accounting for one scheduler run.

    ``placements_requested`` counts every candidate evaluation the heuristic
    asked for — exactly what the naive implementation would have computed —
    while ``placements_evaluated`` counts the ones actually computed; the
    difference is served by the cross-step memo.  The flow pipeline surfaces
    these through the adequation stage's FlowEvent metrics.
    """

    placements_requested: int = 0
    placements_evaluated: int = 0
    placement_cache_hits: int = 0
    operations_committed: int = 0

    def to_dict(self) -> dict:
        return {
            "placements_requested": self.placements_requested,
            "placements_evaluated": self.placements_evaluated,
            "placement_cache_hits": self.placement_cache_hits,
            "operations_committed": self.operations_committed,
        }


class ListSchedulerBase:
    """Common state and placement machinery for all list schedulers.

    ``incremental=False`` selects the retained naive reference path: full
    timeline rescans and no placement memo, bit-for-bit the pre-index
    behavior.  It exists for the byte-identity property tests and the
    scaling benchmark's baseline; production callers never need it.
    """

    def __init__(
        self,
        costs: CostModel,
        constraints: Optional[MappingConstraints] = None,
        incremental: bool = True,
    ):
        self.costs = costs
        self.graph: AlgorithmGraph = costs.graph
        self.constraints = constraints or MappingConstraints()
        self.schedule = Schedule()
        self.incremental = incremental
        self.stats = SchedulerStats()
        self._placed: dict[str, ScheduledOp] = {}
        #: operation name -> condition key (factored exclusivity index).
        self._cond: dict[str, CondKey] = {
            op.name: (op.condition.group, op.condition.value) if op.condition else None
            for op in self.graph.operations
        }
        #: operator name -> condition key -> max committed end.
        self._op_frontier: dict[str, dict[CondKey, int]] = {}
        #: medium name -> (src cond key, dst cond key) -> max committed end.
        self._med_frontier: dict[str, dict[tuple[CondKey, CondKey], int]] = {}
        #: dynamic operator name -> condition value -> max reconfig end.
        self._rec_frontier: dict[str, dict[Hashable, int]] = {}
        #: (operation name, operator name) -> (placement, media it read).
        self._placement_cache: dict[tuple[str, str], tuple[Placement, frozenset[str]]] = {}
        self._candidates_cache: dict[str, list[Operator]] = {}
        #: (operation name, operator name) -> static communication plan: the
        #: predecessor ends, routes and per-hop durations are fixed once the
        #: predecessors are placed (and they always are before the operation
        #: becomes ready), so each re-evaluation only folds the current
        #: medium frontiers over a precomputed hop list.
        self._comm_plan: dict[
            tuple[str, str], tuple[tuple[tuple[int, tuple], ...], frozenset[str], int]
        ] = {}
        #: operation name -> cached schedule pressure; an entry is valid
        #: exactly while none of the operation's cached placements has been
        #: invalidated (pressure is a pure function of those placements).
        self._pressure_cache: dict[str, int] = {}
        #: one topological sort per run — the graph is frozen during
        #: scheduling, so ranks, ready-list seeding and selection order can
        #: share it.
        self._topo: list[Operation] = list(self.graph.topological_order())

    # -- naive reference sweeps -------------------------------------------------
    #
    # The pre-index implementation re-filtered and re-sorted the whole
    # committed schedule on every timeline query.  The naive path reproduces
    # that behavior (and its cost) verbatim so the byte-identity property
    # tests and the scaling benchmark compare against the true seed, not an
    # accidentally index-accelerated hybrid.

    def _naive_of_operator(self, name: str) -> list[ScheduledOp]:
        return sorted(
            (s for s in self.schedule.ops if s.operator.name == name),
            key=lambda s: (s.start, s.end),
        )

    def _naive_of_medium(self, name: str) -> list[ScheduledTransfer]:
        return sorted(
            (t for t in self.schedule.transfers if t.medium.name == name),
            key=lambda t: (t.start, t.end),
        )

    def _naive_reconfigs_of(self, name: str) -> list[ScheduledReconfig]:
        return sorted(
            (r for r in self.schedule.reconfigs if r.operator.name == name),
            key=lambda r: (r.start, r.end),
        )

    # -- timeline helpers ------------------------------------------------------

    def _operator_ready(self, op: Operation, operator: Operator) -> int:
        """Earliest time ``operator`` can start ``op`` (append-only timeline;
        exclusive alternatives may overlap)."""
        if not self.incremental:
            ready = 0
            for s in self._naive_of_operator(operator.name):
                if not self.graph.exclusive(op, s.op):
                    ready = max(ready, s.end)
            return ready
        ck = self._cond.get(op.name)
        ready = 0
        for key, end in self._op_frontier.get(operator.name, _EMPTY_DICT).items():
            if end > ready and not _excl(ck, key):
                ready = end
        return ready

    def _medium_ready(self, edge: Edge, medium_name: str) -> int:
        """Earliest time ``medium`` can carry ``edge`` (exclusivity-aware)."""
        if not self.incremental:
            ready = 0
            for t in self._naive_of_medium(medium_name):
                if self.graph.exclusive(edge.src, t.edge.src):
                    continue
                if self.graph.exclusive(edge.dst, t.edge.dst):
                    continue
                ready = max(ready, t.end)
            return ready
        src_ck = self._cond.get(edge.src.name)
        dst_ck = self._cond.get(edge.dst.name)
        ready = 0
        for (s_key, d_key), end in self._med_frontier.get(medium_name, _EMPTY_DICT).items():
            if end > ready and not _excl(src_ck, s_key) and not _excl(dst_ck, d_key):
                ready = end
        return ready

    # -- tentative placement ------------------------------------------------------

    def _build_comm_plan(
        self, op: Operation, operator: Operator
    ) -> tuple[tuple[tuple[int, tuple], ...], frozenset[str], int]:
        """Freeze everything about ``(op, operator)`` that cannot change.

        Every predecessor is placed before ``op`` becomes ready and is never
        moved, so per in-edge the producer end, the route, the per-hop
        transfer durations and the condition keys are all constants; the
        only live inputs of a placement evaluation are the medium/operator
        frontiers.  The plan also records the read media (for the dirty-set
        invalidation) and the execution duration."""
        entries: list[tuple[int, tuple]] = []
        read_media: set[str] = set()
        for edge in self.graph.in_edges(op):
            src = self._placed[edge.src.name]
            if src.operator.name == operator.name:
                entries.append((src.end, ()))
                continue
            src_ck = self._cond.get(edge.src.name)
            dst_ck = self._cond.get(edge.dst.name)
            size = edge.size_bytes
            hops = []
            for hop, medium in enumerate(self.costs.route(src.operator, operator).media):
                hops.append((edge, medium, medium.name, medium.transfer_ns(size), src_ck, dst_ck, hop))
                read_media.add(medium.name)
            entries.append((src.end, tuple(hops)))
        plan = (tuple(entries), frozenset(read_media), self.costs.duration(op, operator))
        self._comm_plan[(op.name, operator.name)] = plan
        return plan

    def _try_place(self, op: Operation, operator: Operator) -> Placement:
        """Earliest placement of ``op`` on ``operator`` given current state."""
        self.stats.placements_evaluated += 1
        if not self.incremental:
            return self._try_place_naive(op, operator)
        plan = self._comm_plan.get((op.name, operator.name))
        if plan is None:
            plan = self._build_comm_plan(op, operator)
        transfers: list[ScheduledTransfer] = []
        local_medium_ready: dict[str, int] = {}  # reservations within this placement
        data_ready = 0
        med_frontier = self._med_frontier
        for src_end, hops in plan[0]:
            t = src_end
            for edge, medium, medium_name, dur, src_ck, dst_ck, hop in hops:
                ready = local_medium_ready.get(medium_name, 0)
                frontier = med_frontier.get(medium_name)
                if frontier:
                    for pair, end in frontier.items():
                        if end > ready and not _excl(src_ck, pair[0]) and not _excl(dst_ck, pair[1]):
                            ready = end
                if ready > t:
                    t = ready
                hop_end = t + dur
                transfers.append(
                    ScheduledTransfer(edge=edge, medium=medium, start=t, end=hop_end, hop=hop)
                )
                local_medium_ready[medium_name] = hop_end
                t = hop_end
            if t > data_ready:
                data_ready = t
        raw_start = self._earliest_start(op, operator, data_ready)
        start, reconfig = self._setup_for(op, operator, raw_start)
        end = start + plan[2]
        return Placement(
            op=op, operator=operator, start=start, end=end, transfers=transfers, reconfig=reconfig
        )

    def _try_place_naive(self, op: Operation, operator: Operator) -> Placement:
        """The original evaluation: re-derives routes and rescans timelines."""
        transfers: list[ScheduledTransfer] = []
        local_medium_ready: dict[str, int] = {}  # reservations within this placement
        data_ready = 0
        for edge in self.graph.in_edges(op):
            src = self._placed[edge.src.name]
            if src.operator.name == operator.name:
                data_ready = max(data_ready, src.end)
                continue
            route = self.costs.route(src.operator, operator)
            t = src.end
            for hop, medium in enumerate(route.media):
                ready = max(
                    self._medium_ready(edge, medium.name),
                    local_medium_ready.get(medium.name, 0),
                )
                hop_start = max(t, ready)
                hop_end = hop_start + medium.transfer_ns(edge.size_bytes)
                transfers.append(
                    ScheduledTransfer(edge=edge, medium=medium, start=hop_start, end=hop_end, hop=hop)
                )
                local_medium_ready[medium.name] = hop_end
                t = hop_end
            data_ready = max(data_ready, t)
        raw_start = self._earliest_start(op, operator, data_ready)
        start, reconfig = self._setup_for(op, operator, raw_start)
        end = start + self.costs.duration(op, operator)
        return Placement(
            op=op, operator=operator, start=start, end=end, transfers=transfers, reconfig=reconfig
        )

    def _placement_for(self, op: Operation, operator: Operator) -> Placement:
        """Memoizing wrapper around :meth:`_try_place`.

        Cached entries are invalidated by :meth:`_commit` when the committed
        operation touched this candidate's operator, any medium it read, or
        was this operation itself; everything else stays valid because a
        placement is a pure function of those inputs plus the (immutable
        once placed) predecessor placements.
        """
        self.stats.placements_requested += 1
        if not self.incremental:
            return self._try_place(op, operator)
        key = (op.name, operator.name)
        entry = self._placement_cache.get(key)
        if entry is not None:
            self.stats.placement_cache_hits += 1
            return entry[0]
        placement = self._try_place(op, operator)
        self._placement_cache[key] = (placement, self._comm_plan[key][1])
        return placement

    def _earliest_start(self, op: Operation, operator: Operator, data_ready: int) -> int:
        """Earliest start of ``op`` on ``operator`` once data has arrived.

        The base policy is append-only: after every non-exclusive operation
        already committed to the operator.  Subclasses may fill gaps
        (see :class:`repro.aaa.insertion.InsertionScheduler`).
        """
        return max(data_ready, self._operator_ready(op, operator))

    def _setup_for(
        self, op: Operation, operator: Operator, raw_start: int
    ) -> tuple[int, Optional[ScheduledReconfig]]:
        """Hook for subclasses: sequence-dependent setup (reconfiguration).

        Returns the possibly-delayed start and an optional reconfiguration
        interval to commit alongside the operation.  The base heuristic is
        reconfiguration-blind (the paper: "SynDEx's heuristic needs
        additional developments to optimize time reconfiguration").
        """
        return raw_start, None

    def _commit(self, placement: Placement) -> ScheduledOp:
        scheduled = ScheduledOp(
            op=placement.op, operator=placement.operator, start=placement.start, end=placement.end
        )
        self.schedule.add_op(scheduled)
        for t in placement.transfers:
            self.schedule.add_transfer(t)
        if placement.reconfig is not None:
            self.schedule.add_reconfig(placement.reconfig)
        self._placed[placement.op.name] = scheduled
        self.stats.operations_committed += 1
        if self.incremental:
            self._advance_frontiers(placement, scheduled)
            self._invalidate_placements(placement)
        return scheduled

    def _advance_frontiers(self, placement: Placement, scheduled: ScheduledOp) -> None:
        operator_name = placement.operator.name
        front = self._op_frontier.setdefault(operator_name, {})
        ck = self._cond.get(placement.op.name)
        if scheduled.end > front.get(ck, -1):
            front[ck] = scheduled.end
        for t in placement.transfers:
            pair = (self._cond.get(t.edge.src.name), self._cond.get(t.edge.dst.name))
            med = self._med_frontier.setdefault(t.medium.name, {})
            if t.end > med.get(pair, -1):
                med[pair] = t.end
        if placement.reconfig is not None:
            rec = self._rec_frontier.setdefault(operator_name, {})
            value = placement.reconfig.condition_value
            if placement.reconfig.end > rec.get(value, -1):
                rec[value] = placement.reconfig.end

    def _invalidate_placements(self, placement: Placement) -> None:
        """Dirty-set invalidation after a commit."""
        committed = placement.op.name
        dirty_operator = placement.operator.name
        dirty_media = {t.medium.name for t in placement.transfers}
        cache = self._placement_cache
        pressures = self._pressure_cache
        stale = [
            key
            for key, (_, read_media) in cache.items()
            if key[0] == committed
            or key[1] == dirty_operator
            or (dirty_media and not dirty_media.isdisjoint(read_media))
        ]
        for key in stale:
            del cache[key]
            # A pressure is a function of *all* the operation's candidate
            # placements, so losing any one of them voids it.
            pressures.pop(key[0], None)
        pressures.pop(committed, None)

    # -- ranks ---------------------------------------------------------------------

    def _tail_ranks(self) -> dict[str, int]:
        """Remaining critical path *after* each operation (best-case durations)."""
        tail: dict[str, int] = {}
        for op in reversed(self._topo):
            best = 0
            for succ in self.graph.successors(op):
                best = max(best, self.costs.best_duration(succ) + tail[succ.name])
            tail[op.name] = best
        return tail

    # -- driver ----------------------------------------------------------------------

    def _successor_map(self) -> dict[str, list[Operation]]:
        """Data successors plus the implicit conditioning edges.

        A conditioned operation cannot start before its group's selector has
        produced the condition value — and neither can the *producers that
        feed* the conditioned alternatives, because their sends are routed
        by the very same value (the executive's conditional ``send_`` guards
        on it).  Both become implicit selector→X precedences, skipping any X
        that is an ancestor of the selector (cycle guard)."""
        succs: dict[str, list[Operation]] = {
            op.name: list(self.graph.successors(op)) for op in self.graph.operations
        }

        def ancestors_of(op: Operation) -> set[str]:
            seen: set[str] = set()
            stack = [op]
            while stack:
                current = stack.pop()
                for pred in self.graph.predecessors(current):
                    if pred.name not in seen:
                        seen.add(pred.name)
                        stack.append(pred)
            return seen

        for group in self.graph.condition_groups.values():
            selector = group.selector
            blocked = ancestors_of(selector) | {selector.name}
            targets: dict[str, Operation] = {}
            for case_op in group.operations:
                targets.setdefault(case_op.name, case_op)
                for producer in self.graph.predecessors(case_op):
                    targets.setdefault(producer.name, producer)
            existing = {s.name for s in succs[selector.name]}
            for name, op in targets.items():
                if name not in blocked and name not in existing:
                    succs[selector.name].append(op)
        return succs

    def run(self) -> Schedule:
        """Schedule every operation; returns the completed schedule."""
        succs = self._successor_map()
        pending = {op.name: op for op in self.graph.operations}
        n_preds = {op.name: 0 for op in self.graph.operations}
        for preds in succs.values():
            for succ in preds:
                n_preds[succ.name] += 1
        ready = [op for op in self._topo if n_preds[op.name] == 0]
        while ready:
            op = self._select(ready)
            ready.remove(op)
            del pending[op.name]
            best = self._best_placement(op)
            self._commit(best)
            for succ in succs[op.name]:
                if succ.name not in pending:
                    continue
                n_preds[succ.name] -= 1
                if n_preds[succ.name] == 0:
                    ready.append(succ)
        if pending:
            raise RuntimeError(f"unschedulable operations remain: {sorted(pending)}")
        return self.schedule

    def _candidates(self, op: Operation) -> list[Operator]:
        cached = self._candidates_cache.get(op.name)
        if cached is None:
            cached = self.constraints.candidates(op, self.costs)
            self._candidates_cache[op.name] = cached
        return cached

    def _best_placement(self, op: Operation) -> Placement:
        placements = [self._placement_for(op, p) for p in self._candidates(op)]
        return min(placements, key=lambda pl: (pl.end, pl.operator.name))

    def _select(self, ready: list[Operation]) -> Operation:  # pragma: no cover - abstract
        raise NotImplementedError


class SynDExScheduler(ListSchedulerBase):
    """The AAA schedule-pressure heuristic (SynDEx's adequation core)."""

    def __init__(
        self,
        costs: CostModel,
        constraints: Optional[MappingConstraints] = None,
        incremental: bool = True,
    ):
        super().__init__(costs, constraints, incremental=incremental)
        self._tails = self._tail_ranks()

    def _pressure(self, op: Operation) -> int:
        """Schedule pressure: completion of the best placement plus the
        remaining critical path — the op that would stretch the schedule the
        most if delayed.

        Memoized across commit steps: computing it caches every candidate
        placement, and :meth:`_invalidate_placements` voids the pressure the
        moment any of those placements goes stale — so a cached value is
        always exactly what a fresh evaluation would return."""
        if not self.incremental:
            return self._best_placement(op).end + self._tails[op.name]
        pressure = self._pressure_cache.get(op.name)
        if pressure is None:
            pressure = self._best_placement(op).end + self._tails[op.name]
            self._pressure_cache[op.name] = pressure
        else:
            # Keep the accounting honest: the naive reference would have
            # re-evaluated every candidate to answer this, so a pressure hit
            # still counts as that many requested (and memo-served) lookups.
            n = len(self._candidates(op))
            self.stats.placements_requested += n
            self.stats.placement_cache_hits += n
        return pressure

    def _select(self, ready: list[Operation]) -> Operation:
        return max(ready, key=lambda op: (self._pressure(op), op.name))
