"""List schedulers: shared machinery plus the SynDEx-like heuristic.

The SynDEx heuristic is a greedy *schedule-pressure* list scheduler: at each
step it evaluates every ready operation on every feasible operator, keeps the
best placement per operation (earliest completion, communications included),
then commits the operation whose best placement is most critical — i.e.
whose completion plus remaining critical path to the sinks is largest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aaa.costs import CostModel
from repro.aaa.mapping import MappingConstraints
from repro.aaa.schedule import Schedule, ScheduledOp, ScheduledReconfig, ScheduledTransfer
from repro.arch.operator import Operator
from repro.dfg.graph import AlgorithmGraph, Edge
from repro.dfg.operations import Operation

__all__ = ["Placement", "ListSchedulerBase", "SynDExScheduler"]


@dataclass
class Placement:
    """A tentative placement of one operation, transfers included."""

    op: Operation
    operator: Operator
    start: int
    end: int
    transfers: list[ScheduledTransfer]
    reconfig: Optional["ScheduledReconfig"] = None


class ListSchedulerBase:
    """Common state and placement machinery for all list schedulers."""

    def __init__(self, costs: CostModel, constraints: Optional[MappingConstraints] = None):
        self.costs = costs
        self.graph: AlgorithmGraph = costs.graph
        self.constraints = constraints or MappingConstraints()
        self.schedule = Schedule()
        self._placed: dict[str, ScheduledOp] = {}

    # -- timeline helpers ------------------------------------------------------

    def _operator_ready(self, op: Operation, operator: Operator) -> int:
        """Earliest time ``operator`` can start ``op`` (append-only timeline;
        exclusive alternatives may overlap)."""
        ready = 0
        for s in self.schedule.of_operator(operator):
            if not self.graph.exclusive(op, s.op):
                ready = max(ready, s.end)
        return ready

    def _medium_ready(self, edge: Edge, medium_name: str) -> int:
        """Earliest time ``medium`` can carry ``edge`` (exclusivity-aware)."""
        ready = 0
        for t in self.schedule.of_medium(medium_name):
            if self.graph.exclusive(edge.src, t.edge.src):
                continue
            if self.graph.exclusive(edge.dst, t.edge.dst):
                continue
            ready = max(ready, t.end)
        return ready

    # -- tentative placement ------------------------------------------------------

    def _try_place(self, op: Operation, operator: Operator) -> Placement:
        """Earliest placement of ``op`` on ``operator`` given current state."""
        transfers: list[ScheduledTransfer] = []
        local_medium_ready: dict[str, int] = {}  # reservations within this placement
        data_ready = 0
        for edge in self.graph.in_edges(op):
            src = self._placed[edge.src.name]
            if src.operator.name == operator.name:
                data_ready = max(data_ready, src.end)
                continue
            route = self.costs.route(src.operator, operator)
            t = src.end
            for hop, medium in enumerate(route.media):
                ready = max(
                    self._medium_ready(edge, medium.name),
                    local_medium_ready.get(medium.name, 0),
                )
                hop_start = max(t, ready)
                hop_end = hop_start + medium.transfer_ns(edge.size_bytes)
                transfers.append(
                    ScheduledTransfer(edge=edge, medium=medium, start=hop_start, end=hop_end, hop=hop)
                )
                local_medium_ready[medium.name] = hop_end
                t = hop_end
            data_ready = max(data_ready, t)
        raw_start = self._earliest_start(op, operator, data_ready)
        start, reconfig = self._setup_for(op, operator, raw_start)
        end = start + self.costs.duration(op, operator)
        return Placement(
            op=op, operator=operator, start=start, end=end, transfers=transfers, reconfig=reconfig
        )

    def _earliest_start(self, op: Operation, operator: Operator, data_ready: int) -> int:
        """Earliest start of ``op`` on ``operator`` once data has arrived.

        The base policy is append-only: after every non-exclusive operation
        already committed to the operator.  Subclasses may fill gaps
        (see :class:`repro.aaa.insertion.InsertionScheduler`).
        """
        return max(data_ready, self._operator_ready(op, operator))

    def _setup_for(
        self, op: Operation, operator: Operator, raw_start: int
    ) -> tuple[int, Optional[ScheduledReconfig]]:
        """Hook for subclasses: sequence-dependent setup (reconfiguration).

        Returns the possibly-delayed start and an optional reconfiguration
        interval to commit alongside the operation.  The base heuristic is
        reconfiguration-blind (the paper: "SynDEx's heuristic needs
        additional developments to optimize time reconfiguration").
        """
        return raw_start, None

    def _commit(self, placement: Placement) -> ScheduledOp:
        scheduled = ScheduledOp(
            op=placement.op, operator=placement.operator, start=placement.start, end=placement.end
        )
        self.schedule.ops.append(scheduled)
        self.schedule.transfers.extend(placement.transfers)
        if placement.reconfig is not None:
            self.schedule.reconfigs.append(placement.reconfig)
        self._placed[placement.op.name] = scheduled

    # -- ranks ---------------------------------------------------------------------

    def _tail_ranks(self) -> dict[str, int]:
        """Remaining critical path *after* each operation (best-case durations)."""
        tail: dict[str, int] = {}
        for op in reversed(self.graph.topological_order()):
            best = 0
            for succ in self.graph.successors(op):
                best = max(best, self.costs.best_duration(succ) + tail[succ.name])
            tail[op.name] = best
        return tail

    # -- driver ----------------------------------------------------------------------

    def _successor_map(self) -> dict[str, list[Operation]]:
        """Data successors plus the implicit conditioning edges.

        A conditioned operation cannot start before its group's selector has
        produced the condition value — and neither can the *producers that
        feed* the conditioned alternatives, because their sends are routed
        by the very same value (the executive's conditional ``send_`` guards
        on it).  Both become implicit selector→X precedences, skipping any X
        that is an ancestor of the selector (cycle guard)."""
        succs: dict[str, list[Operation]] = {
            op.name: list(self.graph.successors(op)) for op in self.graph.operations
        }

        def ancestors_of(op: Operation) -> set[str]:
            seen: set[str] = set()
            stack = [op]
            while stack:
                current = stack.pop()
                for pred in self.graph.predecessors(current):
                    if pred.name not in seen:
                        seen.add(pred.name)
                        stack.append(pred)
            return seen

        for group in self.graph.condition_groups.values():
            selector = group.selector
            blocked = ancestors_of(selector) | {selector.name}
            targets: dict[str, Operation] = {}
            for case_op in group.operations:
                targets.setdefault(case_op.name, case_op)
                for producer in self.graph.predecessors(case_op):
                    targets.setdefault(producer.name, producer)
            existing = {s.name for s in succs[selector.name]}
            for name, op in targets.items():
                if name not in blocked and name not in existing:
                    succs[selector.name].append(op)
        return succs

    def run(self) -> Schedule:
        """Schedule every operation; returns the completed schedule."""
        succs = self._successor_map()
        pending = {op.name: op for op in self.graph.operations}
        n_preds = {op.name: 0 for op in self.graph.operations}
        for preds in succs.values():
            for succ in preds:
                n_preds[succ.name] += 1
        ready = [op for op in self.graph.topological_order() if n_preds[op.name] == 0]
        while ready:
            op = self._select(ready)
            ready.remove(op)
            del pending[op.name]
            best = self._best_placement(op)
            self._commit(best)
            for succ in succs[op.name]:
                if succ.name not in pending:
                    continue
                n_preds[succ.name] -= 1
                if n_preds[succ.name] == 0:
                    ready.append(succ)
        if pending:
            raise RuntimeError(f"unschedulable operations remain: {sorted(pending)}")
        return self.schedule

    def _best_placement(self, op: Operation) -> Placement:
        candidates = self.constraints.candidates(op, self.costs)
        placements = [self._try_place(op, p) for p in candidates]
        return min(placements, key=lambda pl: (pl.end, pl.operator.name))

    def _select(self, ready: list[Operation]) -> Operation:  # pragma: no cover - abstract
        raise NotImplementedError


class SynDExScheduler(ListSchedulerBase):
    """The AAA schedule-pressure heuristic (SynDEx's adequation core)."""

    def __init__(self, costs: CostModel, constraints: Optional[MappingConstraints] = None):
        super().__init__(costs, constraints)
        self._tails = self._tail_ranks()

    def _pressure(self, op: Operation) -> int:
        """Schedule pressure: completion of the best placement plus the
        remaining critical path — the op that would stretch the schedule the
        most if delayed."""
        best = self._best_placement(op)
        return best.end + self._tails[op.name]

    def _select(self, ready: list[Operation]) -> Operation:
        return max(ready, key=lambda op: (self._pressure(op), op.name))
