"""Baseline schedulers for the adequation benchmarks.

- :class:`EarliestFinishScheduler` — a myopic dynamic list scheduler in the
  spirit of Noguera & Badia's HW/SW partitioning for dynamically
  reconfigurable architectures (DATE 2001): operations are taken in
  data-flow order and greedily assigned to whichever operator finishes them
  first, with no global pressure metric and no reconfiguration lookahead.
- :class:`RandomMappingScheduler` — a seeded random feasible mapping with
  ASAP scheduling; the sanity floor every heuristic must beat.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.aaa.costs import CostModel
from repro.aaa.mapping import MappingConstraints
from repro.aaa.scheduler import ListSchedulerBase, Placement
from repro.dfg.operations import Operation

__all__ = ["EarliestFinishScheduler", "RandomMappingScheduler"]


class EarliestFinishScheduler(ListSchedulerBase):
    """FIFO candidate order + earliest-finish operator choice (myopic)."""

    def __init__(
        self,
        costs: CostModel,
        constraints: Optional[MappingConstraints] = None,
        incremental: bool = True,
    ):
        super().__init__(costs, constraints, incremental=incremental)
        self._order = {op.name: i for i, op in enumerate(self._topo)}

    def _select(self, ready: list[Operation]) -> Operation:
        return min(ready, key=lambda op: self._order[op.name])


class RandomMappingScheduler(ListSchedulerBase):
    """Random feasible operator per operation, FIFO order, ASAP placement."""

    def __init__(
        self,
        costs: CostModel,
        constraints: Optional[MappingConstraints] = None,
        seed: int = 0,
        incremental: bool = True,
    ):
        super().__init__(costs, constraints, incremental=incremental)
        self._order = {op.name: i for i, op in enumerate(self._topo)}
        self._rng = random.Random(seed)

    def _select(self, ready: list[Operation]) -> Operation:
        return min(ready, key=lambda op: self._order[op.name])

    def _best_placement(self, op: Operation) -> Placement:
        choice = self._rng.choice(sorted(self._candidates(op), key=lambda p: p.name))
        return self._placement_for(op, choice)
