"""Schedule data model and validator.

The adequation result is "a synchronized executive": per-operator ordered
operation lists, per-medium ordered transfer lists, and (for dynamic
operators) reconfiguration intervals.  The validator checks the invariants
every correct schedule must satisfy — it is the oracle for the scheduler
property tests and for the executive generator.

Timeline bookkeeping is **incremental**: the schedule maintains per-operator
and per-medium timelines sorted by ``(start, end)`` (plus per-operator
reconfiguration timelines and a cached makespan frontier), updated on each
:meth:`Schedule.add_op` / :meth:`Schedule.add_transfer` /
:meth:`Schedule.add_reconfig`.  ``of_operator`` / ``of_medium`` /
``reconfigs_of`` / ``makespan`` are then cheap lookups instead of full
re-filter-and-sort sweeps over the committed schedule — the fix for the
quadratic rescans that dominated the adequation hot path.  Insertion into a
sorted timeline uses ``bisect.insort`` (right-biased), which places an
equal-key interval after the existing ones — exactly where the old stable
``sorted()`` of append order put it, so query results are identical.

Code that mutates the raw ``ops`` / ``transfers`` / ``reconfigs`` lists
directly (tests building adversarial fixtures) is still supported: every
query revalidates the index against the list lengths and rebuilds it when
they diverge.  All operator/medium lookups compare **names**, never object
identity, so schedules that crossed a pickle boundary (the artifact cache,
a sweep-worker pipe) behave exactly like resident ones.
"""

from __future__ import annotations

import hashlib
import json
from bisect import insort
from dataclasses import dataclass, field
from typing import Hashable

from repro.arch.graph import ArchitectureGraph
from repro.arch.media import Medium
from repro.arch.operator import Operator
from repro.dfg.graph import AlgorithmGraph, Edge
from repro.dfg.operations import Operation

__all__ = [
    "ScheduledOp",
    "ScheduledTransfer",
    "ScheduledReconfig",
    "Schedule",
    "ScheduleValidationError",
]


@dataclass(frozen=True, slots=True)
class ScheduledOp:
    """An operation placed in time on an operator."""

    op: Operation
    operator: Operator
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ScheduledTransfer:
    """One hop of a data transfer on a medium."""

    edge: Edge
    medium: Medium
    start: int
    end: int
    hop: int = 0  # index along a multi-hop route

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ScheduledReconfig:
    """A reconfiguration interval on a dynamic operator."""

    operator: Operator
    module: str  # target configuration (e.g. "mod_qam16")
    condition_value: Hashable
    start: int
    end: int
    prefetched: bool = False

    @property
    def duration(self) -> int:
        return self.end - self.start


class ScheduleValidationError(AssertionError):
    """A schedule invariant was violated; carries all found problems."""

    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def _overlap(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    """True when the two half-open intervals share a non-empty window.

    Zero-length (and malformed) intervals occupy no time and overlap
    nothing; the naive ``b.start < a.end`` sweep used to flag a zero-length
    interval sitting strictly inside a busy one as an overlap while ignoring
    the same interval at the busy one's end — inconsistent tie handling the
    adversarial validator fixtures pin down.
    """
    return a_start < a_end and b_start < b_end and b_start < a_end and a_start < b_end


@dataclass
class Schedule:
    """The complete adequation output for one iteration of the algorithm."""

    ops: list[ScheduledOp] = field(default_factory=list)
    transfers: list[ScheduledTransfer] = field(default_factory=list)
    reconfigs: list[ScheduledReconfig] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._reindex()

    # -- pickling (index state is derived, rebuild on load) --------------------

    def __getstate__(self) -> dict:
        # Persist only the authoritative lists: cached artifacts stay
        # byte-identical to the pre-index era and to each other regardless
        # of which process (or code path) built the schedule.
        return {"ops": self.ops, "transfers": self.transfers, "reconfigs": self.reconfigs}

    def __setstate__(self, state: dict) -> None:
        self.ops = state["ops"]
        self.transfers = state["transfers"]
        self.reconfigs = state["reconfigs"]
        self._reindex()

    # -- incremental index ------------------------------------------------------

    def _reindex(self) -> None:
        self._by_operator: dict[str, list[ScheduledOp]] = {}
        self._by_medium: dict[str, list[ScheduledTransfer]] = {}
        self._by_edge: dict[tuple[str, str, str, str], list[ScheduledTransfer]] = {}
        self._recs_by_operator: dict[str, list[ScheduledReconfig]] = {}
        self._max_end = 0
        for s in self.ops:
            self._index_op(s)
        for t in self.transfers:
            self._index_transfer(t)
        for r in self.reconfigs:
            self._index_reconfig(r)
        self._indexed_counts = (len(self.ops), len(self.transfers), len(self.reconfigs))

    def _ensure_index(self) -> None:
        """Rebuild when the raw lists were mutated behind the index's back."""
        if self._indexed_counts != (len(self.ops), len(self.transfers), len(self.reconfigs)):
            self._reindex()

    def _index_op(self, s: ScheduledOp) -> None:
        insort(self._by_operator.setdefault(s.operator.name, []), s, key=lambda x: (x.start, x.end))
        if s.end > self._max_end:
            self._max_end = s.end

    def _index_transfer(self, t: ScheduledTransfer) -> None:
        insort(self._by_medium.setdefault(t.medium.name, []), t, key=lambda x: (x.start, x.end))
        e = t.edge
        self._by_edge.setdefault((e.src.name, e.src_port, e.dst.name, e.dst_port), []).append(t)
        if t.end > self._max_end:
            self._max_end = t.end

    def _index_reconfig(self, r: ScheduledReconfig) -> None:
        insort(
            self._recs_by_operator.setdefault(r.operator.name, []),
            r,
            key=lambda x: (x.start, x.end),
        )
        if r.end > self._max_end:
            self._max_end = r.end

    # -- mutation ---------------------------------------------------------------

    def add_op(self, s: ScheduledOp) -> ScheduledOp:
        """Commit one placed operation, keeping the timeline index current."""
        self._ensure_index()
        self.ops.append(s)
        self._index_op(s)
        self._indexed_counts = (len(self.ops), len(self.transfers), len(self.reconfigs))
        return s

    def add_transfer(self, t: ScheduledTransfer) -> ScheduledTransfer:
        self._ensure_index()
        self.transfers.append(t)
        self._index_transfer(t)
        self._indexed_counts = (len(self.ops), len(self.transfers), len(self.reconfigs))
        return t

    def add_reconfig(self, r: ScheduledReconfig) -> ScheduledReconfig:
        self._ensure_index()
        self.reconfigs.append(r)
        self._index_reconfig(r)
        self._indexed_counts = (len(self.ops), len(self.transfers), len(self.reconfigs))
        return r

    # -- queries -------------------------------------------------------------

    def makespan(self) -> int:
        self._ensure_index()
        return self._max_end

    def of_operator(self, operator: Operator | str) -> list[ScheduledOp]:
        name = operator if isinstance(operator, str) else operator.name
        self._ensure_index()
        return list(self._by_operator.get(name, ()))

    def of_medium(self, medium: Medium | str) -> list[ScheduledTransfer]:
        name = medium if isinstance(medium, str) else medium.name
        self._ensure_index()
        return list(self._by_medium.get(name, ()))

    def reconfigs_of(self, operator: Operator | str) -> list[ScheduledReconfig]:
        name = operator if isinstance(operator, str) else operator.name
        self._ensure_index()
        return list(self._recs_by_operator.get(name, ()))

    def placement(self, op: Operation | str) -> ScheduledOp:
        name = op if isinstance(op, str) else op.name
        for s in self.ops:
            if s.op.name == name:
                return s
        raise KeyError(f"operation {name!r} not in schedule")

    def mapping(self) -> dict[str, str]:
        """Operation name → operator name."""
        return {s.op.name: s.operator.name for s in self.ops}

    def operators_used(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.ops:
            seen.setdefault(s.operator.name)
        return list(seen)

    def transfers_of_edge(self, edge: Edge) -> list[ScheduledTransfer]:
        # Keyed by endpoint names and ports, not Edge identity: the schedule
        # may have crossed a process or cache boundary, so its Edge objects
        # can be equal copies of the caller's graph edges.
        self._ensure_index()
        key = (edge.src.name, edge.src_port, edge.dst.name, edge.dst_port)
        return sorted(self._by_edge.get(key, ()), key=lambda t: t.hop)

    def digest(self) -> str:
        """Content digest of the schedule, sensitive to commit order.

        Two schedules share a digest iff every scheduled operation, transfer
        and reconfiguration is identical *and* was committed in the same
        order — the oracle behind the incremental-vs-naive byte-identity
        property tests.
        """
        payload = {
            "ops": [(s.op.name, s.operator.name, s.start, s.end) for s in self.ops],
            "transfers": [
                (str(t.edge), t.medium.name, t.start, t.end, t.hop) for t in self.transfers
            ],
            "reconfigs": [
                (r.operator.name, r.module, repr(r.condition_value), r.start, r.end, r.prefetched)
                for r in self.reconfigs
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- validation ------------------------------------------------------------

    def validate(self, graph: AlgorithmGraph, architecture: ArchitectureGraph) -> None:
        """Raise :class:`ScheduleValidationError` on any invariant violation."""
        self._ensure_index()
        problems: list[str] = []

        scheduled_names = {s.op.name for s in self.ops}
        for op in graph.operations:
            if op.name not in scheduled_names:
                problems.append(f"operation {op.name!r} is not scheduled")
        if len(scheduled_names) != len(self.ops):
            problems.append("an operation is scheduled more than once")

        for s in self.ops:
            if s.start < 0 or s.end < s.start:
                problems.append(f"operation {s.op.name!r} has invalid interval [{s.start}, {s.end})")

        # Precedence: consumer starts after producer output arrives.
        by_name = {s.op.name: s for s in self.ops}
        for edge in graph.edges:
            src = by_name.get(edge.src.name)
            dst = by_name.get(edge.dst.name)
            if src is None or dst is None:
                continue
            if src.operator.name == dst.operator.name:
                if dst.start < src.end:
                    problems.append(
                        f"edge {edge}: consumer starts at {dst.start} before producer ends at {src.end}"
                    )
                continue
            hops = self.transfers_of_edge(edge)
            if not hops:
                problems.append(f"edge {edge}: crosses operators but has no scheduled transfer")
                continue
            if hops[0].start < src.end:
                problems.append(f"edge {edge}: transfer starts before producer ends")
            if dst.start < hops[-1].end:
                problems.append(f"edge {edge}: consumer starts before transfer completes")
            for a, b in zip(hops, hops[1:]):
                if b.start < a.end:
                    problems.append(f"edge {edge}: hop {b.hop} starts before hop {a.hop} ends")

        # Operator exclusivity (conditioned alternatives may overlap).  The
        # sweep walks the maintained sorted timeline; since starts are
        # non-decreasing, once b.start clears a's busy window no later
        # interval can re-enter it.
        for operator in architecture.operators:
            timeline = self.of_operator(operator)
            for i, a in enumerate(timeline):
                for b in timeline[i + 1 :]:
                    if b.start >= a.end:
                        break
                    if not _overlap(a.start, a.end, b.start, b.end):
                        continue
                    if not graph.exclusive(a.op, b.op):
                        problems.append(
                            f"operations {a.op.name!r} and {b.op.name!r} overlap on {operator.name!r}"
                        )

        # Media serialization (transfers of exclusive producers may overlap).
        for medium in architecture.media:
            timeline = self.of_medium(medium)
            for i, a in enumerate(timeline):
                for b in timeline[i + 1 :]:
                    if b.start >= a.end:
                        break
                    if not _overlap(a.start, a.end, b.start, b.end):
                        continue
                    if not graph.exclusive(a.edge.src, b.edge.src) and not graph.exclusive(
                        a.edge.dst, b.edge.dst
                    ):
                        problems.append(
                            f"transfers {a.edge} and {b.edge} overlap on medium {medium.name!r}"
                        )

        # Reconfigurations: only on dynamic operators; serialized; never
        # overlapping a computation on the same operator.
        for r in self.reconfigs:
            if not r.operator.is_reconfigurable:
                problems.append(f"reconfiguration scheduled on non-dynamic operator {r.operator.name!r}")
            if r.end < r.start:
                problems.append(f"reconfiguration of {r.module!r} has negative duration")
        # Reconfigurations targeting different cases of one group belong to
        # mutually exclusive iterations, so they (and the other case's
        # computations) may legitimately overlap in the schedule template.
        for operator in architecture.dynamic_operators():
            recs = self.reconfigs_of(operator)
            for i, a in enumerate(recs):
                for b in recs[i + 1 :]:
                    if _overlap(a.start, a.end, b.start, b.end) and a.condition_value == b.condition_value:
                        problems.append(
                            f"reconfigurations to {a.module!r} and {b.module!r} overlap "
                            f"on {operator.name!r}"
                        )
            for r in recs:
                for s in self.of_operator(operator):
                    if _overlap(r.start, r.end, s.start, s.end):
                        cond = s.op.condition
                        if cond is not None and cond.value != r.condition_value:
                            continue  # exclusive futures
                        problems.append(
                            f"reconfiguration to {r.module!r} overlaps operation {s.op.name!r} "
                            f"on {operator.name!r}"
                        )

        if problems:
            raise ScheduleValidationError(problems)

    # -- presentation ------------------------------------------------------------

    def table(self) -> str:
        """Human-readable schedule table, grouped per operator and medium."""
        lines = [f"Schedule (makespan {self.makespan()} ns)"]
        for name in sorted(self.operators_used()):
            lines.append(f"  operator {name}:")
            for s in self.of_operator(name):
                cond = f" [if {s.op.condition}]" if s.op.condition else ""
                lines.append(f"    {s.start:>10} .. {s.end:>10}  {s.op.name}{cond}")
            for r in self.reconfigs_of(name):
                tag = " (prefetched)" if r.prefetched else ""
                lines.append(f"    {r.start:>10} .. {r.end:>10}  <reconfig to {r.module}>{tag}")
        media = sorted({t.medium.name for t in self.transfers})
        for name in media:
            lines.append(f"  medium {name}:")
            for t in self.of_medium(name):
                lines.append(f"    {t.start:>10} .. {t.end:>10}  {t.edge}")
        return "\n".join(lines)
