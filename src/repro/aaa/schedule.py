"""Schedule data model and validator.

The adequation result is "a synchronized executive": per-operator ordered
operation lists, per-medium ordered transfer lists, and (for dynamic
operators) reconfiguration intervals.  The validator checks the invariants
every correct schedule must satisfy — it is the oracle for the scheduler
property tests and for the executive generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.arch.graph import ArchitectureGraph
from repro.arch.media import Medium
from repro.arch.operator import Operator
from repro.dfg.graph import AlgorithmGraph, Edge
from repro.dfg.operations import Operation

__all__ = [
    "ScheduledOp",
    "ScheduledTransfer",
    "ScheduledReconfig",
    "Schedule",
    "ScheduleValidationError",
]


@dataclass(frozen=True, slots=True)
class ScheduledOp:
    """An operation placed in time on an operator."""

    op: Operation
    operator: Operator
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ScheduledTransfer:
    """One hop of a data transfer on a medium."""

    edge: Edge
    medium: Medium
    start: int
    end: int
    hop: int = 0  # index along a multi-hop route

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ScheduledReconfig:
    """A reconfiguration interval on a dynamic operator."""

    operator: Operator
    module: str  # target configuration (e.g. "mod_qam16")
    condition_value: Hashable
    start: int
    end: int
    prefetched: bool = False

    @property
    def duration(self) -> int:
        return self.end - self.start


class ScheduleValidationError(AssertionError):
    """A schedule invariant was violated; carries all found problems."""

    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


@dataclass
class Schedule:
    """The complete adequation output for one iteration of the algorithm."""

    ops: list[ScheduledOp] = field(default_factory=list)
    transfers: list[ScheduledTransfer] = field(default_factory=list)
    reconfigs: list[ScheduledReconfig] = field(default_factory=list)

    # -- queries -------------------------------------------------------------

    def makespan(self) -> int:
        ends = [s.end for s in self.ops]
        ends += [t.end for t in self.transfers]
        ends += [r.end for r in self.reconfigs]
        return max(ends, default=0)

    def of_operator(self, operator: Operator | str) -> list[ScheduledOp]:
        name = operator if isinstance(operator, str) else operator.name
        return sorted(
            (s for s in self.ops if s.operator.name == name), key=lambda s: (s.start, s.end)
        )

    def of_medium(self, medium: Medium | str) -> list[ScheduledTransfer]:
        name = medium if isinstance(medium, str) else medium.name
        return sorted(
            (t for t in self.transfers if t.medium.name == name), key=lambda t: (t.start, t.end)
        )

    def reconfigs_of(self, operator: Operator | str) -> list[ScheduledReconfig]:
        name = operator if isinstance(operator, str) else operator.name
        return sorted(
            (r for r in self.reconfigs if r.operator.name == name), key=lambda r: (r.start, r.end)
        )

    def placement(self, op: Operation | str) -> ScheduledOp:
        name = op if isinstance(op, str) else op.name
        for s in self.ops:
            if s.op.name == name:
                return s
        raise KeyError(f"operation {name!r} not in schedule")

    def mapping(self) -> dict[str, str]:
        """Operation name → operator name."""
        return {s.op.name: s.operator.name for s in self.ops}

    def operators_used(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.ops:
            seen.setdefault(s.operator.name)
        return list(seen)

    def transfers_of_edge(self, edge: Edge) -> list[ScheduledTransfer]:
        return sorted(
            # Equality, not identity: the schedule may have crossed a process
            # or cache boundary, so its Edge objects can be equal copies of
            # the caller's graph edges.
            (t for t in self.transfers if t.edge == edge), key=lambda t: t.hop
        )

    # -- validation ------------------------------------------------------------

    def validate(self, graph: AlgorithmGraph, architecture: ArchitectureGraph) -> None:
        """Raise :class:`ScheduleValidationError` on any invariant violation."""
        problems: list[str] = []

        scheduled_names = {s.op.name for s in self.ops}
        for op in graph.operations:
            if op.name not in scheduled_names:
                problems.append(f"operation {op.name!r} is not scheduled")
        if len(scheduled_names) != len(self.ops):
            problems.append("an operation is scheduled more than once")

        for s in self.ops:
            if s.start < 0 or s.end < s.start:
                problems.append(f"operation {s.op.name!r} has invalid interval [{s.start}, {s.end})")

        # Precedence: consumer starts after producer output arrives.
        by_name = {s.op.name: s for s in self.ops}
        for edge in graph.edges:
            src = by_name.get(edge.src.name)
            dst = by_name.get(edge.dst.name)
            if src is None or dst is None:
                continue
            if src.operator.name == dst.operator.name:
                if dst.start < src.end:
                    problems.append(
                        f"edge {edge}: consumer starts at {dst.start} before producer ends at {src.end}"
                    )
                continue
            hops = self.transfers_of_edge(edge)
            if not hops:
                problems.append(f"edge {edge}: crosses operators but has no scheduled transfer")
                continue
            if hops[0].start < src.end:
                problems.append(f"edge {edge}: transfer starts before producer ends")
            if dst.start < hops[-1].end:
                problems.append(f"edge {edge}: consumer starts before transfer completes")
            for a, b in zip(hops, hops[1:]):
                if b.start < a.end:
                    problems.append(f"edge {edge}: hop {b.hop} starts before hop {a.hop} ends")

        # Operator exclusivity (conditioned alternatives may overlap).
        for operator in architecture.operators:
            timeline = self.of_operator(operator)
            for i, a in enumerate(timeline):
                for b in timeline[i + 1 :]:
                    if b.start >= a.end:
                        break
                    if not graph.exclusive(a.op, b.op):
                        problems.append(
                            f"operations {a.op.name!r} and {b.op.name!r} overlap on {operator.name!r}"
                        )

        # Media serialization (transfers of exclusive producers may overlap).
        for medium in architecture.media:
            timeline = self.of_medium(medium)
            for i, a in enumerate(timeline):
                for b in timeline[i + 1 :]:
                    if b.start >= a.end:
                        break
                    if not graph.exclusive(a.edge.src, b.edge.src) and not graph.exclusive(
                        a.edge.dst, b.edge.dst
                    ):
                        problems.append(
                            f"transfers {a.edge} and {b.edge} overlap on medium {medium.name!r}"
                        )

        # Reconfigurations: only on dynamic operators; serialized; never
        # overlapping a computation on the same operator.
        for r in self.reconfigs:
            if not r.operator.is_reconfigurable:
                problems.append(f"reconfiguration scheduled on non-dynamic operator {r.operator.name!r}")
            if r.end < r.start:
                problems.append(f"reconfiguration of {r.module!r} has negative duration")
        # Reconfigurations targeting different cases of one group belong to
        # mutually exclusive iterations, so they (and the other case's
        # computations) may legitimately overlap in the schedule template.
        for operator in architecture.dynamic_operators():
            recs = self.reconfigs_of(operator)
            for i, a in enumerate(recs):
                for b in recs[i + 1 :]:
                    if b.start < a.end and a.condition_value == b.condition_value:
                        problems.append(
                            f"reconfigurations to {a.module!r} and {b.module!r} overlap "
                            f"on {operator.name!r}"
                        )
            for r in recs:
                for s in self.of_operator(operator):
                    if r.start < s.end and s.start < r.end:
                        cond = s.op.condition
                        if cond is not None and cond.value != r.condition_value:
                            continue  # exclusive futures
                        problems.append(
                            f"reconfiguration to {r.module!r} overlaps operation {s.op.name!r} "
                            f"on {operator.name!r}"
                        )

        if problems:
            raise ScheduleValidationError(problems)

    # -- presentation ------------------------------------------------------------

    def table(self) -> str:
        """Human-readable schedule table, grouped per operator and medium."""
        lines = [f"Schedule (makespan {self.makespan()} ns)"]
        for name in sorted(self.operators_used()):
            lines.append(f"  operator {name}:")
            for s in self.of_operator(name):
                cond = f" [if {s.op.condition}]" if s.op.condition else ""
                lines.append(f"    {s.start:>10} .. {s.end:>10}  {s.op.name}{cond}")
            for r in self.reconfigs_of(name):
                tag = " (prefetched)" if r.prefetched else ""
                lines.append(f"    {r.start:>10} .. {r.end:>10}  <reconfig to {r.module}>{tag}")
        media = sorted({t.medium.name for t in self.transfers})
        for name in media:
            lines.append(f"  medium {name}:")
            for t in self.of_medium(name):
                lines.append(f"    {t.start:>10} .. {t.end:>10}  {t.edge}")
        return "\n".join(lines)
