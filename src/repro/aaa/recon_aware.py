"""Reconfiguration-aware adequation — the extension the paper calls for.

The paper's conclusion: "SynDEx's heuristic needs additional developments to
optimize time reconfiguration."  This scheduler is that development: when a
conditioned operation is placed on a dynamic FPGA operator, the module swap
is modelled as a *sequence-dependent setup time* and scheduled explicitly.

Two policies:

- **prefetch** (default): the reconfiguration starts as soon as both the
  condition value is known (selector finished + control-word transfer) and
  the region is free — overlapping the upstream pipeline's computations, so
  most of the ≈4 ms latency is hidden.
- **reactive** (``prefetch=False``): the reconfiguration starts only when the
  operation is otherwise ready to run, exposing the full latency on the
  critical path.  This is what a reconfiguration-blind flow gets at runtime
  and is the baseline in the prefetch benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.aaa.costs import CostModel
from repro.aaa.mapping import MappingConstraints
from repro.aaa.schedule import ScheduledReconfig
from repro.aaa.scheduler import SynDExScheduler
from repro.arch.operator import Operator
from repro.dfg.operations import Operation

__all__ = ["ReconfigAwareScheduler", "SELECT_WORD_BYTES"]

#: Size of the control word carrying the condition value to the manager.
SELECT_WORD_BYTES = 4


class ReconfigAwareScheduler(SynDExScheduler):
    """SynDEx heuristic + explicit reconfiguration scheduling."""

    def __init__(
        self,
        costs: CostModel,
        constraints: Optional[MappingConstraints] = None,
        prefetch: bool = True,
        incremental: bool = True,
    ):
        super().__init__(costs, constraints, incremental=incremental)
        self.prefetch = prefetch
        #: (operation name, operator name) -> control-word arrival time; the
        #: selector never moves once placed, so this is a constant per pair.
        self._select_ready_cache: dict[tuple[str, str], int] = {}

    # -- selector availability -----------------------------------------------------

    def _selector_value_ready(self, op: Operation, operator: Operator) -> int:
        """When the condition value reaches the region's manager."""
        assert op.condition is not None
        key = (op.name, operator.name)
        if self.incremental:
            cached = self._select_ready_cache.get(key)
            if cached is not None:
                return cached
        group = self.graph.condition_groups[op.condition.group]
        sel_placed = self._placed.get(group.selector.name)
        if sel_placed is None:
            # The implicit selector->conditioned-op precedence guarantees this
            # never happens during run(); be conservative if called directly.
            return 0
        route = self.costs.route(sel_placed.operator, operator)
        value = sel_placed.end + route.transfer_ns(SELECT_WORD_BYTES)
        if self.incremental:
            self._select_ready_cache[key] = value
        return value

    def _region_free_for_reconfig(self, op: Operation, operator: Operator) -> int:
        """Earliest time the region can start loading ``op``'s module:
        after every non-exclusive computation and every reconfiguration
        targeting the *same* case (different-case reconfigurations belong to
        mutually exclusive iterations and may overlap)."""
        assert op.condition is not None
        # Computation frontier: identical to the base operator-ready query.
        ready = self._operator_ready(op, operator)
        if self.incremental:
            rec = self._rec_frontier.get(operator.name)
            if rec is not None:
                ready = max(ready, rec.get(op.condition.value, 0))
        else:
            for r in self._naive_reconfigs_of(operator.name):
                if r.condition_value == op.condition.value:
                    ready = max(ready, r.end)
        return ready

    # -- the setup-time hook ------------------------------------------------------------

    def _setup_for(
        self, op: Operation, operator: Operator, raw_start: int
    ) -> tuple[int, Optional[ScheduledReconfig]]:
        if not operator.is_reconfigurable or op.condition is None:
            return raw_start, None
        latency = self.costs.reconfiguration_ns(operator)
        if latency == 0:
            return raw_start, None
        select_ready = self._selector_value_ready(op, operator)
        region_free = self._region_free_for_reconfig(op, operator)
        if self.prefetch:
            reconfig_start = max(select_ready, region_free)
        else:
            # Reactive: the manager only notices at the operation's own start.
            reconfig_start = max(raw_start, select_ready, region_free)
        reconfig_end = reconfig_start + latency
        start = max(raw_start, reconfig_end)
        reconfig = ScheduledReconfig(
            operator=operator,
            module=op.name,
            condition_value=op.condition.value,
            start=reconfig_start,
            end=reconfig_end,
            prefetched=self.prefetch,
        )
        return start, reconfig
