"""Schedule analysis: period bounds, speedup, parallelism profile.

The adequation's makespan is the *latency* of one iteration; the executive
pipelines successive iterations, so the steady-state *period* is bounded
below by the busiest resource.  This module computes those bounds and other
figures of merit a designer reads off an adequation:

- ``period_lower_bound``: max over operators and media of their busy time
  per iteration (the pipeline bottleneck);
- ``speedup``: single-operator serial time / makespan;
- ``parallelism profile``: number of concurrently busy operators over time;
- per-resource utilization relative to the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aaa.costs import CostModel
from repro.aaa.schedule import Schedule

__all__ = ["ScheduleAnalysis", "analyze"]


@dataclass
class ScheduleAnalysis:
    """Derived figures of one schedule."""

    makespan_ns: int
    period_lower_bound_ns: int
    bottleneck: str
    operator_busy_ns: dict[str, int]
    medium_busy_ns: dict[str, int]
    serial_best_ns: Optional[int]
    profile: list[tuple[int, int]]  # (time, concurrently busy operators)

    @property
    def speedup(self) -> Optional[float]:
        """Serial-on-one-operator time / parallel makespan (None when the
        graph cannot run on a single operator)."""
        if self.serial_best_ns is None or self.makespan_ns == 0:
            return None
        return self.serial_best_ns / self.makespan_ns

    @property
    def max_parallelism(self) -> int:
        return max((n for _, n in self.profile), default=0)

    def average_parallelism(self) -> float:
        """Time-weighted mean number of busy operators."""
        if self.makespan_ns == 0 or not self.profile:
            return 0.0
        total = 0
        for (t0, n), (t1, _) in zip(self.profile, self.profile[1:]):
            total += n * (t1 - t0)
        last_t, last_n = self.profile[-1]
        total += last_n * (self.makespan_ns - last_t)
        return total / self.makespan_ns

    def utilization(self) -> dict[str, float]:
        if self.makespan_ns == 0:
            return {}
        out = {name: busy / self.makespan_ns for name, busy in self.operator_busy_ns.items()}
        out.update(
            {name: busy / self.makespan_ns for name, busy in self.medium_busy_ns.items()}
        )
        return out

    def render(self) -> str:
        lines = [
            f"makespan (iteration latency): {self.makespan_ns} ns",
            f"period lower bound          : {self.period_lower_bound_ns} ns "
            f"(bottleneck: {self.bottleneck})",
            f"max / avg parallelism       : {self.max_parallelism} / {self.average_parallelism():.2f}",
        ]
        if self.speedup is not None:
            lines.append(f"speedup vs best single op   : {self.speedup:.2f}x")
        for name, util in sorted(self.utilization().items()):
            lines.append(f"  {name:<12} {100 * util:5.1f}% busy ({self.operator_busy_ns.get(name, self.medium_busy_ns.get(name, 0))} ns)")
        return "\n".join(lines)


def _busy_union(intervals: list[tuple[int, int]]) -> int:
    from repro.sim.metrics import interval_union

    return sum(e - s for s, e in interval_union(intervals))


def analyze(schedule: Schedule, costs: Optional[CostModel] = None) -> ScheduleAnalysis:
    """Analyze a completed schedule (optionally with its cost model for the
    serial-baseline speedup)."""
    makespan = schedule.makespan()

    operator_busy: dict[str, int] = {}
    for name in schedule.operators_used():
        operator_busy[name] = _busy_union(
            [(s.start, s.end) for s in schedule.of_operator(name)]
        )
    medium_busy: dict[str, int] = {}
    for t in schedule.transfers:
        medium_busy.setdefault(t.medium.name, 0)
    for name in medium_busy:
        medium_busy[name] = _busy_union(
            [(t.start, t.end) for t in schedule.of_medium(name)]
        )

    busiest = dict(operator_busy)
    busiest.update(medium_busy)
    if busiest:
        bottleneck, bound = max(busiest.items(), key=lambda kv: (kv[1], kv[0]))
    else:
        bottleneck, bound = "<none>", 0

    serial_best: Optional[int] = None
    if costs is not None:
        candidates: Optional[set[str]] = None
        for op in costs.graph.operations:
            names = {p.name for p in costs.candidates(op)}
            candidates = names if candidates is None else candidates & names
        best = None
        for operator_name in candidates or ():
            operator = costs.architecture.operator(operator_name)
            total = sum(costs.duration(op, operator) for op in costs.graph.operations)
            best = total if best is None else min(best, total)
        serial_best = best

    # Parallelism profile: sweep operator-busy interval endpoints.
    events: dict[int, int] = {}
    for s in schedule.ops:
        events[s.start] = events.get(s.start, 0) + 1
        events[s.end] = events.get(s.end, 0) - 1
    profile: list[tuple[int, int]] = []
    level = 0
    for time in sorted(events):
        level += events[time]
        profile.append((time, level))

    return ScheduleAnalysis(
        makespan_ns=makespan,
        period_lower_bound_ns=bound,
        bottleneck=bottleneck,
        operator_busy_ns=operator_busy,
        medium_busy_ns=medium_busy,
        serial_best_ns=serial_best,
        profile=profile,
    )
