"""Insertion-based (gap-filling) list scheduling.

The append-only heuristic can leave idle windows on an operator when a
later-selected operation's data was ready before an earlier-selected one's.
The insertion variant places each operation in the *earliest idle gap* that
fits it (respecting exclusivity), in the spirit of the insertion-based
extension of HEFT — one concrete answer to the paper's call for "additional
developments" to the heuristic.

The resulting schedule still satisfies every invariant of
:meth:`repro.aaa.schedule.Schedule.validate` (gap insertion never reorders
data dependencies: the candidate start is bounded below by data arrival).
"""

from __future__ import annotations

from repro.aaa.scheduler import SynDExScheduler
from repro.arch.operator import Operator
from repro.dfg.operations import Operation

__all__ = ["InsertionScheduler"]


class InsertionScheduler(SynDExScheduler):
    """Schedule-pressure selection + gap-filling placement."""

    def _earliest_start(self, op: Operation, operator: Operator, data_ready: int) -> int:
        duration = self.costs.duration(op, operator)
        # The maintained per-operator timeline is already sorted by
        # (start, end); the per-element exclusivity filter is O(1) through
        # the factored condition index.  The gap sweep keeps the placement
        # cacheable: its only mutable input is the operator's timeline,
        # which the commit-time dirty set tracks.  The naive branch pays the
        # seed's full filter-and-sort per evaluation, like every other
        # reference-path timeline query.
        if self.incremental:
            timeline = self.schedule.of_operator(operator)
        else:
            timeline = self._naive_of_operator(operator.name)
        busy = [(s.start, s.end) for s in timeline if not self.graph.exclusive(op, s.op)]
        t = data_ready
        for start, end in busy:
            if t + duration <= start:
                return t  # fits in the gap before this interval
            t = max(t, end)
        return t
