"""Seeded request-stream generators for the fleet driver.

Each board gets a pre-generated schedule of ``(gap_ns, region, module)``
requests.  Generating up front (instead of sampling inside the simulation
processes) keeps the event kernel deterministic regardless of board
interleaving, lets the clairvoyant Belady policy see its future, and makes a
board's traffic a pure function of ``(seed, board_id)``.

Patterns:

- ``poisson`` — exponential inter-arrival gaps with occasional tight bursts;
  module selection follows a noisy cycle (predictable enough that learned
  prefetchers can win, noisy enough that they can lose).
- ``diurnal`` — sinusoidally rate-modulated load (the day/night swing of a
  deployed fleet) over a deterministic module rotation.
- ``thrash`` — adversarial: uniform random module excluding the current one,
  so every request misses and history-based prediction has nothing to learn.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

__all__ = [
    "TRAFFIC_PATTERNS",
    "board_rng",
    "generate_schedule",
    "future_from_schedule",
]

TRAFFIC_PATTERNS = ("poisson", "diurnal", "thrash")


def board_rng(seed: int, board_id: str) -> random.Random:
    """Independent, reproducible RNG per board.

    String seeds hash stably in :mod:`random` (unlike ``hash()``), so the
    stream depends only on the values, not the interpreter run.
    """
    return random.Random(f"{seed}:{board_id}")


def _pick_region(rng: random.Random, regions: Sequence[str]) -> str:
    return regions[rng.randrange(len(regions))]


def _poisson(
    rng: random.Random,
    regions: dict[str, list[str]],
    n_requests: int,
    mean_gap_ns: int,
) -> list[tuple[int, str, str]]:
    names = sorted(regions)
    cursor = {r: 0 for r in names}
    schedule: list[tuple[int, str, str]] = []
    burst_left = 0
    while len(schedule) < n_requests:
        if burst_left > 0:
            gap = 1 + int(rng.expovariate(1.0) * mean_gap_ns / 10)
            burst_left -= 1
        else:
            gap = 1 + int(rng.expovariate(1.0) * mean_gap_ns)
            if rng.random() < 0.1:
                burst_left = rng.randrange(3, 9)
        region = _pick_region(rng, names)
        modules = regions[region]
        # Noisy cycle: usually advance to the next module in rotation, the
        # rest of the time jump anywhere.  Learnable but not trivial.
        if rng.random() < 0.8:
            cursor[region] = (cursor[region] + 1) % len(modules)
        else:
            cursor[region] = rng.randrange(len(modules))
        schedule.append((gap, region, modules[cursor[region]]))
    return schedule


def _diurnal(
    rng: random.Random,
    regions: dict[str, list[str]],
    n_requests: int,
    mean_gap_ns: int,
) -> list[tuple[int, str, str]]:
    names = sorted(regions)
    cursor = {r: 0 for r in names}
    # One "day" spans roughly n_requests/2 requests so every run sees at
    # least a couple of peaks and troughs.
    period = max(2, n_requests // 2)
    phase = rng.random() * 2 * math.pi
    schedule: list[tuple[int, str, str]] = []
    for i in range(n_requests):
        # Rate swings 4x between trough and peak -> gap swings inversely.
        swing = 1.0 + 0.6 * math.sin(2 * math.pi * i / period + phase)
        gap = 1 + int(rng.expovariate(1.0) * mean_gap_ns * swing)
        region = _pick_region(rng, names)
        modules = regions[region]
        cursor[region] = (cursor[region] + 1) % len(modules)
        schedule.append((gap, region, modules[cursor[region]]))
    return schedule


def _thrash(
    rng: random.Random,
    regions: dict[str, list[str]],
    n_requests: int,
    mean_gap_ns: int,
) -> list[tuple[int, str, str]]:
    names = sorted(regions)
    current: dict[str, int] = {r: 0 for r in names}
    schedule: list[tuple[int, str, str]] = []
    for _ in range(n_requests):
        gap = 1 + int(rng.expovariate(1.0) * mean_gap_ns)
        region = _pick_region(rng, names)
        modules = regions[region]
        if len(modules) > 1:
            # Uniform over the *other* modules: every request is a swap and
            # carries no sequential signal for a predictor to latch onto.
            step = rng.randrange(1, len(modules))
            current[region] = (current[region] + step) % len(modules)
        schedule.append((gap, region, modules[current[region]]))
    return schedule


_GENERATORS = {"poisson": _poisson, "diurnal": _diurnal, "thrash": _thrash}


def generate_schedule(
    pattern: str,
    rng: random.Random,
    regions: dict[str, list[str]],
    n_requests: int,
    mean_gap_ns: int = 200_000,
) -> list[tuple[int, str, str]]:
    """A board's full request schedule: ``[(gap_ns, region, module), ...]``."""
    try:
        generator = _GENERATORS[pattern]
    except KeyError:
        known = ", ".join(TRAFFIC_PATTERNS)
        raise ValueError(f"unknown traffic pattern {pattern!r}; known: {known}") from None
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if not regions or any(not mods for mods in regions.values()):
        raise ValueError("every region needs at least one module")
    return generator(rng, regions, n_requests, mean_gap_ns)


def future_from_schedule(schedule: Sequence[tuple[int, str, str]]) -> dict[str, list[str]]:
    """Per-region demand sequence, as :class:`BeladyEviction` expects it."""
    future: dict[str, list[str]] = {}
    for _gap, region, module in schedule:
        future.setdefault(region, []).append(module)
    return future
