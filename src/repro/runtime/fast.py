"""The batched fleet engine: array-state request simulation without a heap.

Fleet boards interact only through the shared calendar's event ordering —
each board owns its store, builder and manager, so per-board outcomes are a
pure function of ``(schedule, policy, architecture)``.  That independence
means fleet results need no global event heap at all: this module replays
the same request schedules against the same management semantics as the
kernel path, but advances state per *request step* instead of per *event*.

Two execution strategies, picked per policy bundle by :func:`vector_mode`:

- **Vectorized cores** hold the whole fleet's manager state as numpy arrays
  (active module per ``(board, region)``, resident sets as boolean cubes,
  recency/frequency/insertion clocks) and advance all boards one request
  step at a time.  Closed forms exist wherever the request stream is
  sequential per board:

  * ``noprefetch`` (``none``/``lru``/``lfu`` and any ``region_slots``):
    demands never overlap loads, so a step is hit / resident-hit / miss with
    ``stall = latency + transfer`` on a miss, plus masked insert/evict
    updates on the resident cube.
  * ``onselect`` (``fixed``/``on_select`` at one slot): the announcement
    starts a speculative load at the previous completion time ``t_sel``;
    with ``spec_end = t_sel + latency + transfer`` the demand at ``t_req``
    either joins/queues behind the flight (``t_req <= spec_end``: completion
    at ``spec_end``, a useful prefetch, no hit counters) or finds it done
    (``t_req > spec_end``: instant hit + useful prefetch).  Both cases were
    derived from — and are property-tested against — the kernel's cascade
    ordering, including the exact-tie ``t_req == spec_end`` join.

- **The scalar micro-simulator** (:class:`_BoardSim`) covers every other
  bundle (history/confidence/markov speculation, belady's clairvoyant scan,
  prefetch with multi-slot overrides).  It is still ~an order of magnitude
  faster than the kernel: one tiny per-board heap of plain tuples replaces
  generator processes, mailboxes and resource locks, while the *decision*
  objects (prefetch policy, eviction policy) are the real registry classes,
  so there is no second implementation of policy logic to drift.  Event
  sequence numbers are assigned at the same logical points as the kernel
  assigns its enqueue counters, reproducing every tie-break:

  * a demand resolved in region-process context schedules the next latency
    timeout *before* the driver's gap timeout (equal-time loads win);
  * a demand resolved in driver context (instant/resident hit) schedules
    the gap *before* the post-hit speculation's latency window;
  * at a transfer end the cascade runs bookkeeping -> port hand-off ->
    next queued job -> driver continuation, exactly the kernel's
    urgent-completion / FIFO-grant / mailbox-get / stall-chain order.

Both strategies reproduce the kernel's per-board counters and end times
exactly; ``FleetReport.digest()`` is identical between engines (asserted by
``tests/runtime/test_fast.py`` across policies x traffic x seeds x slots).
Counter rows use the :data:`~repro.reconfig.manager.COUNTER_FIELDS` layout
and are rebuilt through :meth:`ManagerStats.from_counters`, so the array
form and the manager's dataclass can never disagree on field order.

Preconditions (all guaranteed by the fleet driver): size-only bitstream
registration (CRC always verifies), no readback verification, no upset
injection — the failure/retry counters stay zero on both paths.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.reconfig.architectures import ReconfigArchitecture
from repro.reconfig.manager import COUNTER_FIELDS, ManagerStats
from repro.reconfig.prefetch import NoPrefetchPolicy, OnSelectPrefetchPolicy
from repro.runtime.policies import RuntimePolicy, create_policy, get_bundle
from repro.runtime.traffic import future_from_schedule
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports fast)
    from repro.runtime.fleet import FleetConfig

__all__ = ["FastRunStats", "simulate_fast_fleet", "vector_mode"]

_IDX = {name: i for i, name in enumerate(COUNTER_FIELDS)}
_I_DEMAND_REQUESTS = _IDX["demand_requests"]
_I_DEMAND_LOADS = _IDX["demand_loads"]
_I_PREFETCH_LOADS = _IDX["prefetch_loads"]
_I_USEFUL = _IDX["useful_prefetches"]
_I_WASTED = _IDX["wasted_prefetches"]
_I_INSTANT = _IDX["instant_hits"]
_I_RESIDENT = _IDX["resident_hits"]
_I_EVICTIONS = _IDX["evictions"]
_I_STALL = _IDX["stall_ns"]
_N_COUNTERS = len(COUNTER_FIELDS)


@dataclass
class FastRunStats:
    """How the fast engine executed one fleet (the regression-guard hooks)."""

    #: vector core used, or "scalar" when the whole fleet fell back
    mode: str
    #: boards advanced by a vectorized core
    vector_boards: int
    #: boards advanced by the scalar micro-simulator
    scalar_boards: int
    #: per-step vector updates executed (== requests_per_board when vectorized)
    vector_steps: int

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "vector_boards": self.vector_boards,
            "scalar_boards": self.scalar_boards,
            "vector_steps": self.vector_steps,
        }


def vector_mode(policy: str, region_slots: Optional[int] = None) -> Optional[str]:
    """The vector core handling ``policy`` at ``region_slots``, or None.

    None means the bundle's transitions resist vectorization (idle-time
    speculation whose predictions depend on per-board history, or belady's
    clairvoyant scan) and boards run through the scalar micro-simulator.
    The class checks are exact (``type is``): a subclassed policy may
    override behaviour the closed forms assume, so it falls back safely.
    """
    bundle = get_bundle(policy)
    slots = region_slots if region_slots is not None else bundle.region_slots
    prefetch_type = type(bundle.prefetch_factory())
    if prefetch_type is NoPrefetchPolicy and bundle.eviction_name in (None, "lru", "lfu"):
        if slots == 1 or bundle.eviction_name is None:
            kind = "fifo" if slots > 1 else "single"
        else:
            kind = bundle.eviction_name
        return f"noprefetch-{kind}"
    if prefetch_type is OnSelectPrefetchPolicy and bundle.eviction_name is None and slots == 1:
        return "onselect"
    return None


# ---------------------------------------------------------------------------
# shared setup helpers
# ---------------------------------------------------------------------------


def _load_table(
    config: "FleetConfig",
    arch: ReconfigArchitecture,
    region_map: dict[str, list[str]],
) -> dict[tuple[str, str], int]:
    """Per-(region, module) transfer durations through the real builder."""
    sim = Simulator()
    store = arch.make_store()
    for region, modules in region_map.items():
        for module in modules:
            store.register(region, module, config.bitstream_bytes)
    builder = arch.make_builder(sim, store)
    return {
        (region, module): builder.estimate_for(region, module)
        for region, modules in region_map.items()
        for module in modules
    }


def _pack_schedules(
    schedules: Sequence[Sequence[tuple[int, str, str]]],
    ridx: dict[str, int],
    midx: dict[str, dict[str, int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Structure-of-arrays form: (gaps, region idx, module idx), each (B, S)."""
    n_boards = len(schedules)
    steps = len(schedules[0]) if n_boards else 0
    count = n_boards * steps
    gaps = np.fromiter(
        (gap for schedule in schedules for gap, _, _ in schedule),
        dtype=np.int64, count=count,
    ).reshape(n_boards, steps)
    regs = np.fromiter(
        (ridx[region] for schedule in schedules for _, region, _ in schedule),
        dtype=np.int64, count=count,
    ).reshape(n_boards, steps)
    mods = np.fromiter(
        (midx[region][module] for schedule in schedules for _, region, module in schedule),
        dtype=np.int64, count=count,
    ).reshape(n_boards, steps)
    return gaps, regs, mods


# ---------------------------------------------------------------------------
# vectorized cores
# ---------------------------------------------------------------------------


def _vector_noprefetch(
    gaps: np.ndarray,
    regs: np.ndarray,
    mods: np.ndarray,
    *,
    slots: int,
    eviction: Optional[str],
    load_arr: np.ndarray,
    rank_arr: np.ndarray,
    latency_ns: int,
    recorder=None,
) -> tuple[np.ndarray, np.ndarray]:
    """none / lru / lfu at any ``region_slots``: strictly sequential demands.

    Without prefetch the region is always idle when a demand arrives, so a
    step is: hit (active module), resident hit (shared area), or a blocking
    load of ``latency + transfer``.  Multi-slot inserts may overflow the
    area; the victim is the masked argmin of ``metric * (M+1) + name_rank``
    — reproducing ``min(candidates, key=(metric, name))`` with LRU recency,
    LFU frequency, or FIFO insertion order as the metric.
    """
    n_boards, steps = gaps.shape
    n_regions, n_modules = load_arr.shape
    counters = np.zeros((n_boards, _N_COUNTERS), dtype=np.int64)
    t = np.zeros(n_boards, dtype=np.int64)
    # preload: every region ships its first module (index 0) at power-up
    loaded = np.zeros((n_boards, n_regions), dtype=np.int64)
    bi = np.arange(n_boards)
    multi = slots > 1
    if multi:
        resident = np.zeros((n_boards, n_regions, n_modules), dtype=bool)
        resident[:, :, 0] = True
        if eviction == "lru":
            # the LRU clock ticks once per preload in region-map order
            metric_arr = np.zeros((n_boards, n_regions, n_modules), dtype=np.int64)
            clock = np.zeros(n_boards, dtype=np.int64)
            for region in range(n_regions):
                clock += 1
                metric_arr[:, region, 0] = clock
        elif eviction == "lfu":
            metric_arr = np.zeros((n_boards, n_regions, n_modules), dtype=np.int64)
        else:  # FIFO: per-board insertion sequence (order within a region)
            metric_arr = np.zeros((n_boards, n_regions, n_modules), dtype=np.int64)
            clock = np.zeros(n_boards, dtype=np.int64)
            for region in range(n_regions):
                clock += 1
                metric_arr[:, region, 0] = clock
    huge = np.iinfo(np.int64).max
    if recorder is not None:
        # recorded durations include the request latency; the recorder
        # subtracts it in bulk when deriving port occupancy
        recorder.mode = "noprefetch"
        recorder.port_offset_ns = latency_ns
    for step in range(steps):
        gap = gaps[:, step]
        region = regs[:, step]
        module = mods[:, step]
        t_req = t + gap
        counters[:, _I_DEMAND_REQUESTS] += 1
        if multi and eviction == "lru":
            clock += 1
            metric_arr[bi, region, module] = clock
        elif multi and eviction == "lfu":
            metric_arr[bi, region, module] += 1
        active = loaded[bi, region]
        hit = active == module
        if multi:
            res_hit = resident[bi, region, module] & ~hit
        else:
            res_hit = np.zeros(n_boards, dtype=bool)
        miss = ~(hit | res_hit)
        duration = latency_ns + load_arr[region, module]
        stall = np.where(miss, duration, 0)
        counters[:, _I_INSTANT] += hit
        counters[:, _I_RESIDENT] += res_hit
        counters[:, _I_DEMAND_LOADS] += miss
        counters[:, _I_STALL] += stall
        if recorder is not None:
            # every array here already exists for this step, so recording
            # is one tuple append; stalls (duration where miss), hits
            # (~miss) and port occupancy (duration - latency where miss)
            # are derived lazily at the store's first read — counters/t
            # are untouched and digest parity cannot move
            recorder.record_step(t_req, miss, duration)
        t = t_req + stall
        loaded[bi, region] = module
        if multi:
            resident[bi, region, module] = True
            if eviction not in ("lru", "lfu"):
                clock = clock + miss
                metric_arr[bi, region, module] = np.where(
                    miss, clock, metric_arr[bi, region, module]
                )
            over = miss & (resident[bi, region].sum(axis=1) > slots)
            if over.any():
                ob, orr, om = bi[over], region[over], module[over]
                candidates = resident[ob, orr].copy()
                candidates[np.arange(len(ob)), om] = False  # keep the new module
                key = metric_arr[ob, orr] * (n_modules + 1) + rank_arr[orr]
                key = np.where(candidates, key, huge)
                victim = key.argmin(axis=1)
                resident[ob, orr, victim] = False
                counters[ob, _I_EVICTIONS] += 1
                if eviction == "lru":
                    # LRU forgets evicted recency (get(..., 0) after pop)
                    metric_arr[ob, orr, victim] = 0
    return counters, t


def _vector_onselect(
    gaps: np.ndarray,
    regs: np.ndarray,
    mods: np.ndarray,
    *,
    load_arr: np.ndarray,
    latency_ns: int,
    recorder=None,
) -> tuple[np.ndarray, np.ndarray]:
    """fixed / on_select at one slot: announcement-driven speculation.

    The select announcement at ``t_sel`` (the previous completion) starts a
    speculative load unless the module is already active.  The demand a gap
    later joins or queues behind the flight (``t_req <= spec_end``) or finds
    it already swapped in (``t_req > spec_end``).  Either way the prefetch
    is claimed by its own demand, so no prefetch is ever wasted and the
    region returns to idle before the next step.
    """
    n_boards, steps = gaps.shape
    n_regions = load_arr.shape[0]
    counters = np.zeros((n_boards, _N_COUNTERS), dtype=np.int64)
    t = np.zeros(n_boards, dtype=np.int64)
    loaded = np.zeros((n_boards, n_regions), dtype=np.int64)
    bi = np.arange(n_boards)
    if recorder is not None:
        recorder.mode = "onselect"
        recorder.port_offset_ns = 0  # recorded loads are pure transfers
    for step in range(steps):
        gap = gaps[:, step]
        region = regs[:, step]
        module = mods[:, step]
        t_req = t + gap
        counters[:, _I_DEMAND_REQUESTS] += 1
        same = loaded[bi, region] == module
        load = load_arr[region, module]
        spec_end = t + latency_ns + load
        early = ~same & (t_req <= spec_end)
        late = ~same & ~early
        counters[:, _I_INSTANT] += same | late
        counters[:, _I_USEFUL] += ~same
        counters[:, _I_PREFETCH_LOADS] += ~same
        stall = np.where(early, spec_end - t_req, 0)
        counters[:, _I_STALL] += stall
        if recorder is not None:
            # arrays already exist for this step (see _vector_noprefetch);
            # hits are same | late == ~early, and every ~same step runs
            # one speculative transfer of ``load`` through the port
            recorder.record_step(t_req, stall, early, same, load)
        t = np.where(early, spec_end, t_req)
        loaded[bi, region] = module
    return counters, t


# ---------------------------------------------------------------------------
# scalar micro-simulator (the exact fallback for speculative policies)
# ---------------------------------------------------------------------------

_IDLE, _LATENCY, _PORT_WAIT, _XFER = range(4)
_EV_DRIVER, _EV_WAKE, _EV_LAT, _EV_XFER = range(4)


class _MicroJob:
    __slots__ = ("module", "demand", "cancelled", "called_at", "joined", "handed")

    def __init__(self, module: str, demand: bool):
        self.module = module
        self.demand = demand
        self.cancelled = False
        self.called_at = 0
        self.joined = False
        #: handed straight to a parked region process (kernel mailboxes skip
        #: the queue then, so demand cancel-scans never see this job)
        self.handed = False


class _MicroRegion:
    __slots__ = ("name", "modules", "loaded", "loading", "phase", "job", "items",
                 "unclaimed", "inflight_unclaimed", "last_demand", "resident",
                 "history", "wake_scheduled")

    def __init__(self, name: str, modules: Sequence[str]):
        self.name = name
        self.modules = frozenset(modules)
        self.loaded: Optional[str] = None
        self.loading: Optional[str] = None
        self.phase = _IDLE
        self.job: Optional[_MicroJob] = None
        self.items: deque[_MicroJob] = deque()
        self.unclaimed: Optional[str] = None
        self.inflight_unclaimed = False
        self.last_demand: Optional[str] = None
        self.resident: dict[str, None] = {}
        self.history: list[str] = []
        self.wake_scheduled = False


class _BoardSim:
    """One board, replayed on a tiny (time, seq) heap with exact tie-breaks.

    Decision logic (prefetch prediction, victim selection) runs through the
    *real* policy objects; only the event plumbing is re-implemented.  Seq
    numbers are assigned where the kernel assigns its enqueue counters, so
    equal-time events resolve in the same order (see the module docstring).
    """

    def __init__(
        self,
        schedule: Sequence[tuple[int, str, str]],
        runtime_policy: RuntimePolicy,
        region_map: dict[str, list[str]],
        latency_ns: int,
        load_ns: dict[tuple[str, str], int],
        telemetry: Optional[tuple[list, list]] = None,
    ):
        self.policy = runtime_policy.prefetch
        self.eviction = runtime_policy.eviction
        self.observe = getattr(self.policy, "observe", None)
        self.slots = runtime_policy.region_slots
        self.multi = self.slots > 1
        self.latency_ns = latency_ns
        self.load_ns = load_ns
        self.schedule = schedule
        self.regions: dict[str, _MicroRegion] = {}
        for name, modules in region_map.items():
            region = _MicroRegion(name, modules)
            # preload: the first module ships in the startup bitstream
            region.loaded = modules[0]
            region.history.append(modules[0])
            if self.multi:
                region.resident[modules[0]] = None
                if self.eviction is not None:
                    self.eviction.on_insert(name, modules[0])
            self.regions[name] = region
        self.heap: list[tuple[int, int, int, Optional[_MicroRegion]]] = []
        self.seq = 0
        self.port_holder: Optional[_MicroRegion] = None
        self.port_fifo: deque[_MicroRegion] = deque()
        self.index = 0
        self.counters = [0] * _N_COUNTERS
        self.last = 0
        # telemetry event sinks (shared across the fleet's boards): demand
        # completions as (t_req, stall_ns, hit) and port transfers as
        # (end_ns, duration_ns).  None = telemetry off, zero appends.
        self.tel_demands, self.tel_port = telemetry if telemetry else (None, None)

    # -- event plumbing ----------------------------------------------------

    def _sched(self, when: int, kind: int, region: Optional[_MicroRegion]) -> None:
        heapq.heappush(self.heap, (when, self.seq, kind, region))
        self.seq += 1

    def run(self) -> tuple[list[int], int]:
        self._driver_continue(0)
        heap = self.heap
        while heap:
            now, _seq, kind, region = heapq.heappop(heap)
            self.last = now
            if kind == _EV_DRIVER:
                self._driver_wake(now)
            elif kind == _EV_WAKE:
                self._proc_wake(region, now)
            elif kind == _EV_LAT:
                self._latency_end(region, now)
            else:
                self._transfer_end(region, now)
        return self.counters, self.last

    # -- the request driver (Board._drive) ---------------------------------

    def _driver_continue(self, now: int) -> None:
        while True:
            if self.index >= len(self.schedule):
                return
            gap, region_name, module = self.schedule[self.index]
            region = self.regions[region_name]
            target = self.policy.on_select(region_name, module)
            if (
                target is not None
                and target != region.loaded
                and target != region.loading
                and not (self.multi and target in region.resident)
                and target in region.modules
            ):
                self._post(region, _MicroJob(target, demand=False), now)
            if gap:
                self._sched(now + gap, _EV_DRIVER, None)
                return
            if not self._issue_demand(now):
                return
            self.index += 1

    def _driver_wake(self, now: int) -> None:
        if not self._issue_demand(now):
            return
        self.index += 1
        self._driver_continue(now)

    def _issue_demand(self, now: int) -> bool:
        """ensure_loaded(); True when the demand completed immediately."""
        _, region_name, module = self.schedule[self.index]
        region = self.regions[region_name]
        counters = self.counters
        counters[_I_DEMAND_REQUESTS] += 1
        if self.observe is not None:
            self.observe(region.last_demand, module)
        if self.eviction is not None:
            self.eviction.on_demand(region_name, module)
        region.last_demand = module
        if region.loaded == module and region.loading is None:
            if region.unclaimed == module:
                counters[_I_USEFUL] += 1
                region.unclaimed = None
            counters[_I_INSTANT] += 1
            if self.tel_demands is not None:
                self.tel_demands.append((now, 0, True))
            if not region.items:
                self._speculate(region, now)
            return True
        if self.multi and module in region.resident and region.loading is None:
            if region.unclaimed == module:
                counters[_I_USEFUL] += 1
                region.unclaimed = None
            counters[_I_RESIDENT] += 1
            if self.tel_demands is not None:
                self.tel_demands.append((now, 0, True))
            self._activate(region, module)
            if not region.items:
                self._speculate(region, now)
            return True
        if region.loading == module:
            # join the in-flight load; useful only while still unclaimed
            region.unclaimed = None
            if region.inflight_unclaimed:
                counters[_I_USEFUL] += 1
                region.inflight_unclaimed = False
            assert region.job is not None
            region.job.joined = True
            region.job.called_at = now
            return False
        for pending in region.items:
            if not pending.handed and not pending.demand and pending.module != module:
                pending.cancelled = True
        job = _MicroJob(module, demand=True)
        job.called_at = now
        self._post(region, job, now)
        return False

    # -- the region process (manager._region_proc) -------------------------

    def _post(self, region: _MicroRegion, job: _MicroJob, now: int) -> None:
        if region.phase == _IDLE and not region.wake_scheduled:
            job.handed = True
            region.wake_scheduled = True
            self._sched(now, _EV_WAKE, region)
        region.items.append(job)

    def _proc_wake(self, region: _MicroRegion, now: int) -> None:
        region.wake_scheduled = False
        if region.phase != _IDLE:
            return
        if self._pick(region, now):
            self.index += 1
            self._driver_continue(now)

    def _activate(self, region: _MicroRegion, module: str) -> None:
        region.loaded = module
        region.history.append(module)

    def _speculate(self, region: _MicroRegion, now: int) -> None:
        target = self.policy.on_idle(region.name, region.loaded, region.history)
        if (
            target
            and target not in (region.loaded, region.loading)
            and target in region.modules
        ):
            if self.multi and target in region.resident:
                return
            self._post(region, _MicroJob(target, demand=False), now)

    def _pick(self, region: _MicroRegion, now: int) -> bool:
        """Consume queued jobs until one needs a load; True on demand completion."""
        completed = False
        counters = self.counters
        while region.items:
            job = region.items.popleft()
            if job.cancelled or job.module == region.loaded:
                if job.demand and job.module == region.loaded and region.unclaimed == job.module:
                    counters[_I_USEFUL] += 1
                    region.unclaimed = None
                if job.demand:
                    counters[_I_STALL] += now - job.called_at
                    if self.tel_demands is not None:
                        self.tel_demands.append(
                            (job.called_at, now - job.called_at, False)
                        )
                    completed = True
                    if not region.items:
                        self._speculate(region, now)
                continue
            if self.multi and job.module in region.resident:
                if job.demand:
                    if region.unclaimed == job.module:
                        counters[_I_USEFUL] += 1
                        region.unclaimed = None
                    counters[_I_RESIDENT] += 1
                    self._activate(region, job.module)
                    counters[_I_STALL] += now - job.called_at
                    if self.tel_demands is not None:
                        self.tel_demands.append(
                            (job.called_at, now - job.called_at, True)
                        )
                    completed = True
                    if not region.items:
                        self._speculate(region, now)
                continue
            region.job = job
            region.phase = _LATENCY
            self._sched(now + self.latency_ns, _EV_LAT, region)
            return completed
        region.phase = _IDLE
        return completed

    def _latency_end(self, region: _MicroRegion, now: int) -> None:
        job = region.job
        assert job is not None
        region.loading = job.module
        region.inflight_unclaimed = not job.demand
        if self.port_holder is None:
            self.port_holder = region
            region.phase = _XFER
            self._sched(now + self.load_ns[(region.name, job.module)], _EV_XFER, region)
        else:
            region.phase = _PORT_WAIT
            self.port_fifo.append(region)

    def _transfer_end(self, region: _MicroRegion, now: int) -> None:
        counters = self.counters
        job = region.job
        assert job is not None
        if self.tel_port is not None:
            # the transfer that just released the port, attributed to its
            # end window (demand and speculative loads alike)
            self.tel_port.append((now, self.load_ns[(region.name, job.module)]))
        # 1. the region process's post-load bookkeeping (urgent completion)
        previous = region.loaded
        if not self.multi and region.unclaimed is not None and region.unclaimed == previous:
            counters[_I_WASTED] += 1
            region.unclaimed = None
        region.loaded = job.module
        region.loading = None
        region.history.append(job.module)
        if self.multi:
            region.resident[job.module] = None
            if self.eviction is not None:
                self.eviction.on_insert(region.name, job.module)
            self._evict_overflow(region, keep=job.module)
        if job.demand:
            counters[_I_DEMAND_LOADS] += 1
        else:
            counters[_I_PREFETCH_LOADS] += 1
            if region.inflight_unclaimed:
                region.unclaimed = job.module
        region.inflight_unclaimed = False
        completed = job.demand or job.joined
        if completed:
            counters[_I_STALL] += now - job.called_at
            if self.tel_demands is not None:
                self.tel_demands.append((job.called_at, now - job.called_at, False))
        if job.demand and not region.items:
            self._speculate(region, now)
        # 2. port hand-off: the FIFO head's transfer starts inside this
        #    cascade, before the next queued job or the driver resume
        if self.port_fifo:
            waiter = self.port_fifo.popleft()
            self.port_holder = waiter
            waiter.phase = _XFER
            assert waiter.job is not None
            self._sched(now + self.load_ns[(waiter.name, waiter.job.module)], _EV_XFER, waiter)
        else:
            self.port_holder = None
        # 3. the region process takes its next queued job
        region.job = None
        if self._pick(region, now):
            completed = True
        # 4. the driver's stall chain resumes last
        if completed:
            self.index += 1
            self._driver_continue(now)

    def _evict_overflow(self, region: _MicroRegion, keep: str) -> None:
        while len(region.resident) > self.slots:
            candidates = [m for m in region.resident if m != keep]
            if not candidates:
                return
            if self.eviction is not None:
                victim = self.eviction.choose_victim(region.name, candidates)
                self.eviction.on_evict(region.name, victim)
            else:
                victim = candidates[0]
            del region.resident[victim]
            self.counters[_I_EVICTIONS] += 1
            if region.unclaimed == victim:
                self.counters[_I_WASTED] += 1
                region.unclaimed = None


# ---------------------------------------------------------------------------
# fleet-level entry point
# ---------------------------------------------------------------------------


def simulate_fast_fleet(
    config: "FleetConfig",
    schedules: Sequence[Sequence[tuple[int, str, str]]],
    arch: ReconfigArchitecture,
    recorder=None,
) -> tuple[list[dict], list[int], FastRunStats]:
    """Replay ``schedules`` under ``config``'s policy without the kernel.

    Returns per-board stats dicts (``ManagerStats.to_dict()`` form, in
    schedule order), per-board end times (the last event on each board),
    and the engine's execution stats.

    ``recorder`` (a :class:`repro.runtime.fleet.FleetTelemetryRecorder`)
    collects windowed telemetry as per-step array references on the vector
    cores and per-event tuples on the scalar fallback; all aggregation is
    deferred to the recorder's flush, so the simulated outcome is
    bit-identical with or without it.
    """
    bundle = get_bundle(config.policy)
    region_map = config.region_map()
    latency_ns = arch.request_latency_ns
    load_ns = _load_table(config, arch, region_map)
    mode = vector_mode(config.policy, config.region_slots)
    slots = config.region_slots if config.region_slots is not None else bundle.region_slots
    n_boards = len(schedules)
    if mode is not None and n_boards:
        region_names = list(region_map)
        ridx = {name: i for i, name in enumerate(region_names)}
        midx = {name: {m: i for i, m in enumerate(mods)} for name, mods in region_map.items()}
        n_modules = max(len(mods) for mods in region_map.values())
        load_arr = np.zeros((len(region_names), n_modules), dtype=np.int64)
        rank_arr = np.zeros((len(region_names), n_modules), dtype=np.int64)
        for name, modules in region_map.items():
            for i, module in enumerate(modules):
                load_arr[ridx[name], i] = load_ns[(name, module)]
            for rank, module in enumerate(sorted(modules)):
                rank_arr[ridx[name], midx[name][module]] = rank
        gaps, regs, mods = _pack_schedules(schedules, ridx, midx)
        if mode == "onselect":
            counters, ends = _vector_onselect(
                gaps, regs, mods, load_arr=load_arr, latency_ns=latency_ns,
                recorder=recorder,
            )
        else:
            counters, ends = _vector_noprefetch(
                gaps, regs, mods,
                slots=slots,
                eviction=bundle.eviction_name,
                load_arr=load_arr,
                rank_arr=rank_arr,
                latency_ns=latency_ns,
                recorder=recorder,
            )
        rows = [ManagerStats.from_counters(row).to_dict() for row in counters]
        end_times = [int(e) for e in ends]
        stats = FastRunStats(
            mode=f"vector:{mode}",
            vector_boards=n_boards,
            scalar_boards=0,
            vector_steps=int(gaps.shape[1]),
        )
        return rows, end_times, stats
    rows = []
    end_times = []
    telemetry = (
        (recorder.scalar_demands, recorder.scalar_port)
        if recorder is not None else None
    )
    for schedule in schedules:
        future = future_from_schedule(schedule) if bundle.needs_future else None
        runtime_policy = create_policy(
            config.policy, future=future, region_slots=config.region_slots
        )
        board = _BoardSim(
            schedule, runtime_policy, region_map, latency_ns, load_ns,
            telemetry=telemetry,
        )
        counters, end = board.run()
        rows.append(ManagerStats.from_counters(counters).to_dict())
        end_times.append(end)
    stats = FastRunStats(
        mode="scalar" if mode is None else f"vector:{mode}",
        vector_boards=0,
        scalar_boards=n_boards,
        vector_steps=0,
    )
    return rows, end_times, stats
