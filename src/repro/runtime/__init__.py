"""Fleet-scale runtime: boards, traffic, the policy zoo, the fleet driver.

The paper validates one platform at a time; a deployed base station runs
*fleets* of them.  This package multiplexes M independent reconfigurable
boards onto one deterministic event kernel:

- :mod:`repro.runtime.board` — the :class:`Board` abstraction (store +
  protocol builder + configuration manager + optional executive) taking the
  simulator as a shared handle,
- :mod:`repro.runtime.traffic` — seeded request-stream generators (Poisson
  bursts, diurnal swings, adversarial thrash),
- :mod:`repro.runtime.policies` — the named policy registry unifying
  prefetch strategies and multi-slot eviction bundles,
- :mod:`repro.runtime.fleet` — the fleet driver and the per-policy
  hit-rate / stall-latency frontier, with an ``engine`` selector,
- :mod:`repro.runtime.fast` — the batched array-state engine reproducing
  the kernel's outcomes exactly (digest parity) at vector speed.
"""

from repro.runtime.board import Board
from repro.runtime.fast import FastRunStats, simulate_fast_fleet, vector_mode
from repro.runtime.fleet import (
    ENGINES,
    FleetConfig,
    FleetJob,
    FleetReport,
    generate_fleet_schedules,
    run_fleet,
    run_frontier,
)
from repro.runtime.policies import (
    POLICY_REGISTRY,
    PolicyBundle,
    RuntimePolicy,
    create_policy,
    get_bundle,
    policy_names,
)
from repro.runtime.traffic import (
    TRAFFIC_PATTERNS,
    board_rng,
    future_from_schedule,
    generate_schedule,
)

__all__ = [
    "Board",
    "ENGINES",
    "FastRunStats",
    "FleetConfig",
    "FleetJob",
    "FleetReport",
    "generate_fleet_schedules",
    "run_fleet",
    "run_frontier",
    "simulate_fast_fleet",
    "vector_mode",
    "POLICY_REGISTRY",
    "PolicyBundle",
    "RuntimePolicy",
    "create_policy",
    "get_bundle",
    "policy_names",
    "TRAFFIC_PATTERNS",
    "board_rng",
    "future_from_schedule",
    "generate_schedule",
]
