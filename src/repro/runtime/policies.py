"""The policy zoo: named runtime-management bundles.

One name selects a complete region-management strategy — a prefetch policy,
an optional eviction policy, and the region area budget it assumes.  The
registry is the single source of truth for every surface that takes a policy
by name (``repro fleet --policy``, ``repro sweep --simulate-policy``, the
benchmarks), so adding a bundle here makes it selectable everywhere at once.

Prefetch-only bundles keep the paper's exclusive-region model (one slot);
eviction bundles give each region a shared area of ``region_slots`` module
configurations and differ only in victim selection, so their frontier
isolates the replacement decision.  :data:`PolicyBundle.needs_future` marks
clairvoyant bundles (Belady) that require the demand schedule up front —
surfaces without one (e.g. the interactive runtime simulation) must reject
those names at argument-parsing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.reconfig.eviction import EvictionPolicy, make_eviction
from repro.reconfig.prefetch import (
    HistoryPrefetchPolicy,
    MarkovPrefetchPolicy,
    NoPrefetchPolicy,
    OnSelectPrefetchPolicy,
    PrefetchPolicy,
)

__all__ = [
    "PolicyBundle",
    "RuntimePolicy",
    "POLICY_REGISTRY",
    "policy_names",
    "get_bundle",
    "create_policy",
]

#: Area budget (in module configurations) the eviction bundles assume.
EVICTION_SLOTS = 2


@dataclass(frozen=True)
class RuntimePolicy:
    """An instantiated bundle, ready to hand to a manager/board."""

    name: str
    prefetch: PrefetchPolicy
    eviction: Optional[EvictionPolicy]
    region_slots: int


@dataclass(frozen=True)
class PolicyBundle:
    """Registry entry: how to build one named management strategy."""

    name: str
    description: str
    prefetch_factory: Callable[[], PrefetchPolicy]
    eviction_name: Optional[str] = None
    region_slots: int = 1
    #: True when instantiation requires the future demand schedule
    #: (clairvoyant eviction); such bundles cannot serve surfaces that
    #: generate demands on the fly.
    needs_future: bool = False

    def instantiate(
        self,
        future: Optional[dict[str, Sequence[str]]] = None,
        region_slots: Optional[int] = None,
    ) -> RuntimePolicy:
        if self.needs_future and future is None:
            raise ValueError(
                f"policy {self.name!r} is clairvoyant and needs the future "
                f"demand schedule; it is only usable where requests are known "
                f"up front (the fleet driver)"
            )
        eviction = None
        if self.eviction_name is not None:
            eviction = make_eviction(self.eviction_name, future=future)
        return RuntimePolicy(
            name=self.name,
            prefetch=self.prefetch_factory(),
            eviction=eviction,
            region_slots=region_slots if region_slots is not None else self.region_slots,
        )


def _registry() -> dict[str, PolicyBundle]:
    bundles = [
        PolicyBundle(
            name="none",
            description="reactive baseline: load only on demand",
            prefetch_factory=NoPrefetchPolicy,
        ),
        PolicyBundle(
            name="fixed",
            description="the paper's fixed prefetch: load on Select announcement",
            prefetch_factory=OnSelectPrefetchPolicy,
        ),
        PolicyBundle(
            name="on_select",
            description="alias of 'fixed' (historical CLI name)",
            prefetch_factory=OnSelectPrefetchPolicy,
        ),
        PolicyBundle(
            name="history",
            description="first-order Markov predictor, speculate at >=50% confidence",
            prefetch_factory=lambda: HistoryPrefetchPolicy(min_confidence=0.5),
        ),
        PolicyBundle(
            name="confidence",
            description="first-order predictor with a conservative 75% confidence bar",
            prefetch_factory=lambda: HistoryPrefetchPolicy(min_confidence=0.75),
        ),
        PolicyBundle(
            name="markov",
            description="second-order Markov predictor with first-order fallback",
            prefetch_factory=MarkovPrefetchPolicy,
        ),
        PolicyBundle(
            name="lru",
            description=f"{EVICTION_SLOTS}-slot shared area, evict least recently used",
            prefetch_factory=NoPrefetchPolicy,
            eviction_name="lru",
            region_slots=EVICTION_SLOTS,
        ),
        PolicyBundle(
            name="lfu",
            description=f"{EVICTION_SLOTS}-slot shared area, evict least frequently used",
            prefetch_factory=NoPrefetchPolicy,
            eviction_name="lfu",
            region_slots=EVICTION_SLOTS,
        ),
        PolicyBundle(
            name="belady",
            description=f"{EVICTION_SLOTS}-slot shared area, clairvoyant (MIN) eviction",
            prefetch_factory=NoPrefetchPolicy,
            eviction_name="belady",
            region_slots=EVICTION_SLOTS,
            needs_future=True,
        ),
    ]
    return {b.name: b for b in bundles}


POLICY_REGISTRY: dict[str, PolicyBundle] = _registry()


def policy_names(include_future: bool = True) -> list[str]:
    """Registered policy names, sorted; clairvoyant ones are optional."""
    return sorted(
        name for name, bundle in POLICY_REGISTRY.items()
        if include_future or not bundle.needs_future
    )


def get_bundle(name: str) -> PolicyBundle:
    try:
        return POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(policy_names())
        raise ValueError(f"unknown policy {name!r}; known policies: {known}") from None


def create_policy(
    name: str,
    future: Optional[dict[str, Sequence[str]]] = None,
    region_slots: Optional[int] = None,
) -> RuntimePolicy:
    """Instantiate a registered bundle by name."""
    return get_bundle(name).instantiate(future=future, region_slots=region_slots)
