"""The fleet driver: thousands of boards under one policy, two engines.

Builds N independent :class:`~repro.runtime.board.Board` instances, gives
each a seeded request schedule, and measures the fleet outcome.  Boards
interact only through event ordering — each owns its store, builder and
manager — so per-board results are a pure function of ``(seed, board_id,
policy)`` and the report digest is reproducible run-to-run and invariant
under board registration order.

Two engines produce that outcome:

- ``engine="kernel"`` — the reference path: every board lives on one shared
  :class:`~repro.sim.Simulator` and the calendar runs every request as
  discrete events.  Required for tracing and for any future cross-board
  coupling (shared backhaul, fleet-wide admission control).
- ``engine="fast"`` (default) — :mod:`repro.runtime.fast` replays the same
  schedules against array-state cores (or an exact scalar micro-simulator
  for speculative policies), reproducing per-board counters and
  ``end_time_ns`` exactly: ``FleetReport.digest()`` is identical across
  engines.  With ``trace_boards > 0`` the first boards still run through a
  kernel subset so their trace lanes keep full event fidelity.

``run_frontier`` replays the *same* seeded traffic against several policy
bundles — schedules are generated once and shared across policies, since
they depend only on ``(seed, board_id, traffic)``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.reconfig.architectures import ReconfigArchitecture, all_cases
from repro.runtime.board import Board
from repro.runtime.fast import FastRunStats, simulate_fast_fleet
from repro.runtime.policies import create_policy, get_bundle
from repro.runtime.traffic import board_rng, future_from_schedule, generate_schedule
from repro.sim import Simulator, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps runtime import light
    from repro.obs.telemetry import TimeSeriesStore

__all__ = [
    "ENGINES",
    "FleetConfig",
    "FleetReport",
    "FleetJob",
    "FleetTelemetryRecorder",
    "generate_fleet_schedules",
    "run_fleet",
    "run_frontier",
]

#: Recognised values for the engine selector.
ENGINES = ("fast", "kernel")


def _architecture(name: str) -> ReconfigArchitecture:
    cases = {arch.name: arch for arch in all_cases()}
    try:
        return cases[name]
    except KeyError:
        known = ", ".join(sorted(cases))
        raise ValueError(f"unknown architecture {name!r}; known: {known}") from None


@dataclass(frozen=True)
class FleetConfig:
    """Parameters for one fleet run."""

    n_boards: int = 100
    requests_per_board: int = 200
    policy: str = "none"
    traffic: str = "poisson"
    seed: int = 0
    regions: int = 2
    modules_per_region: int = 4
    #: override the policy bundle's area budget (None = bundle default)
    region_slots: Optional[int] = None
    bitstream_bytes: int = 88_000
    architecture: str = "case_a_standalone"
    mean_gap_ns: int = 200_000
    #: the first N boards record full traces (scoped per board); tracing
    #: every board of a large fleet would dominate memory, so default off.
    #: Traced boards always run through the reference kernel path.
    trace_boards: int = 0
    #: "fast" (batched array-state engine) or "kernel" (reference event path)
    engine: str = "fast"

    def region_map(self) -> dict[str, list[str]]:
        return {
            f"R{r}": [f"m{m}" for m in range(self.modules_per_region)]
            for r in range(self.regions)
        }

    def fingerprint(self) -> str:
        """Content hash over *every* config field (the sweep-cache identity)."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class FleetReport:
    """Outcome of one fleet run (one policy, one traffic pattern)."""

    policy: str
    traffic: str
    n_boards: int
    requests_per_board: int
    total_requests: int
    end_time_ns: int
    wall_s: float
    #: per-board stats dicts, in board-id order
    boards: list[dict] = field(default_factory=list)
    totals: dict = field(default_factory=dict)
    #: traces of the first ``trace_boards`` boards, scope = board id
    traces: list[Trace] = field(default_factory=list)
    #: which engine produced this report ("kernel" or "fast")
    engine: str = "kernel"
    #: fast-engine execution stats (vector vs scalar board counts); None
    #: for kernel runs.  Excluded from the digest: it describes *how* the
    #: outcome was computed, not the outcome.
    engine_stats: Optional[FastRunStats] = None

    @property
    def requests_per_sec(self) -> float:
        return self.total_requests / self.wall_s if self.wall_s else float("inf")

    @property
    def hit_rate(self) -> float:
        demands = self.totals.get("demand_requests", 0)
        if not demands:
            return 0.0
        hits = self.totals.get("instant_hits", 0) + self.totals.get("resident_hits", 0)
        return hits / demands

    @property
    def mean_stall_ns(self) -> float:
        demands = self.totals.get("demand_requests", 0)
        return self.totals.get("stall_ns", 0) / demands if demands else 0.0

    def digest(self) -> str:
        """Deterministic fingerprint of the simulated outcome.

        Covers every per-board counter and the kernel end time — not wall
        time, not the engine — so two runs with the same config produce the
        same digest whichever engine computed them, and any behavioural
        drift flips it.
        """
        payload = json.dumps(
            {"boards": self.boards, "end_time_ns": self.end_time_ns},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> str:
        return (
            f"fleet[{self.policy}/{self.traffic}]: {self.n_boards} boards x "
            f"{self.requests_per_board} requests in {self.wall_s:.2f}s wall "
            f"({self.requests_per_sec:,.0f} req/s, {self.engine} engine) — "
            f"hit rate {self.hit_rate:.1%}, "
            f"mean stall {self.mean_stall_ns / 1e3:.1f} us"
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "traffic": self.traffic,
            "n_boards": self.n_boards,
            "requests_per_board": self.requests_per_board,
            "total_requests": self.total_requests,
            "end_time_ns": self.end_time_ns,
            "wall_s": self.wall_s,
            "requests_per_sec": self.requests_per_sec,
            "hit_rate": self.hit_rate,
            "mean_stall_ns": self.mean_stall_ns,
            "totals": dict(self.totals),
            "engine": self.engine,
            "engine_stats": self.engine_stats.to_dict() if self.engine_stats else None,
            "digest": self.digest(),
        }


class FleetTelemetryRecorder:
    """Low-overhead telemetry collector for the fast engine.

    The vector cores hand over *references* to arrays they compute anyway
    each step (no derived arrays are built in the step loop) and the
    scalar micro-simulator appends plain tuples; :meth:`flush` then hands
    lazy batch closures to a
    :class:`~repro.obs.telemetry.TimeSeriesStore`'s write-behind buffer,
    so all concatenation and windowed aggregation runs at the store's
    first read — outside the timed simulation.  The simulated state is
    never read back, so enabling telemetry cannot move
    ``FleetReport.digest()``.

    Series produced (sim-clock windows, labeled ``policy=...``):
    ``fleet.demands`` / ``fleet.hits`` counters keyed by request time,
    ``fleet.stall_ns`` quantile sketch over per-demand stalls (zero on a
    hit — the full request-latency distribution, so p99 covers misses),
    ``fleet.port_busy_ns`` transfer occupancy, and the derived
    ``fleet.port_util`` gauge (busy ns / window ns / boards).
    """

    def __init__(self):
        #: vector-core batches of *raw* step arrays, captured by reference.
        #: No-prefetch cores record ``(t_req, miss, duration)``; on-select
        #: cores record ``(t_req, stall, early, same, load)`` and set
        #: :attr:`mode`.  Everything else — stalls, hit masks, port
        #: occupancy — is derived from these in bulk at the store's first
        #: read.  Keeping the retained set minimal matters: every
        #: referenced array blocks numpy's buffer reuse for the whole run,
        #: which is most of the telemetry overhead the ≤5% guard measures.
        #: :meth:`record_step` therefore compacts every
        #: :attr:`compact_every` batches into one concatenated batch and
        #: releases the small per-step arrays back to the allocator.
        self._steps: list[tuple] = []
        self._n_small = 0
        #: per-step batches held before a compaction pass; a handful of
        #: ~kB arrays stay out of reuse at any time instead of thousands
        self.compact_every: int = 64
        #: which vector core produced :attr:`_steps` (set by the core)
        self.mode: str = "noprefetch"
        #: subtracted from recorded durations (the no-prefetch core hands
        #: over ``latency + transfer`` durations it computed anyway)
        self.port_offset_ns: int = 0
        #: scalar-board demand completions: (t_req, stall_ns, hit)
        self.scalar_demands: list[tuple] = []
        #: scalar-board port transfers: (end_ns, duration_ns)
        self.scalar_port: list[tuple] = []

    def record_step(self, *arrays) -> None:
        steps = self._steps
        steps.append(arrays)
        self._n_small += 1
        if self._n_small >= self.compact_every:
            tail = steps[-self._n_small:]
            del steps[-self._n_small:]
            steps.append(tuple(np.concatenate(cols) for cols in zip(*tail)))
            self._n_small = 0

    def flush(self, store: "TimeSeriesStore", policy: str, n_boards: int) -> None:
        """Hand the accumulated batches to the store as *lazy* batches.

        Nothing is concatenated, masked or derived here: closures capturing
        the raw per-step arrays go into the store's write-behind buffer
        (:meth:`~repro.obs.telemetry.TimeSeriesStore.defer_array`) and run
        at first read, so the cost paid inside the timed simulation is a
        handful of list appends.  The recorder's lists are re-bound (never
        cleared in place) — the closures keep the handed-over batches,
        sharing one memoized materialization across all five series.
        """
        steps, self._steps = self._steps, []
        self._n_small = 0
        scalar_demands, self.scalar_demands = self.scalar_demands, []
        scalar_port, self.scalar_port = self.scalar_port, []
        if not steps and not scalar_demands and not scalar_port:
            return
        mode = self.mode
        offset = self.port_offset_ns
        denominator = float(store.window) * max(n_boards, 1)
        cache: dict = {}

        def _cat(parts):
            return parts[0] if len(parts) == 1 else np.concatenate(parts)

        def _mat():
            """One shared materialization pass, run at first drain."""
            if cache:
                return cache
            parts_t, parts_stall, parts_hit_t = [], [], []
            parts_port_t, parts_port_v = [], []
            if steps:
                t = _cat([s[0] for s in steps])
                if mode == "onselect":
                    stall = _cat([s[1] for s in steps])
                    hits = ~_cat([s[2] for s in steps])  # same | late
                    port_mask = ~_cat([s[3] for s in steps])  # every ~same
                    port_v = _cat([s[4] for s in steps])[port_mask]
                else:
                    miss = _cat([s[1] for s in steps])
                    duration = _cat([s[2] for s in steps])
                    stall = np.where(miss, duration, 0)
                    hits = ~miss
                    port_mask = miss
                    port_v = duration[miss] - offset
                parts_t.append(t)
                parts_stall.append(stall)
                parts_hit_t.append(t[hits])
                keep = port_v > 0
                parts_port_t.append(t[port_mask][keep])
                parts_port_v.append(port_v[keep])
            if scalar_demands:
                events = np.asarray(scalar_demands, dtype=np.int64)
                parts_t.append(events[:, 0])
                parts_stall.append(events[:, 1])
                parts_hit_t.append(events[:, 0][events[:, 2].astype(bool)])
            if scalar_port:
                events = np.asarray(scalar_port, dtype=np.int64)
                keep = events[:, 1] > 0
                parts_port_t.append(events[:, 0][keep])
                parts_port_v.append(events[:, 1][keep])
            empty = np.empty(0, dtype=np.int64)
            cache["t"] = _cat(parts_t) if parts_t else empty
            cache["stall"] = _cat(parts_stall) if parts_stall else empty
            cache["hit_t"] = _cat(parts_hit_t) if parts_hit_t else empty
            cache["port_t"] = _cat(parts_port_t) if parts_port_t else empty
            cache["port_v"] = _cat(parts_port_v) if parts_port_v else empty
            return cache

        store.defer_array(
            "fleet.demands", "counter",
            lambda: (_mat()["t"], None), policy=policy,
        )
        store.defer_array(
            "fleet.hits", "counter",
            lambda: (_mat()["hit_t"], None), policy=policy,
        )
        store.defer_array(
            "fleet.stall_ns", "quantile",
            lambda: (_mat()["t"], _mat()["stall"]), policy=policy,
        )
        store.defer_array(
            "fleet.port_busy_ns", "counter",
            lambda: (_mat()["port_t"], _mat()["port_v"]), policy=policy,
        )
        # the fleet shares no port across boards, so utilization is busy
        # time per window normalized by boards-worth of windows; the
        # additive gauge form sums the per-event contributions
        store.defer_array(
            "fleet.port_util", "gauge",
            lambda: (_mat()["port_t"], _mat()["port_v"] / denominator),
            policy=policy,
        )


def _board_id(index: int) -> str:
    return f"b{index:04d}"


def generate_fleet_schedules(config: FleetConfig) -> list[list[tuple[int, str, str]]]:
    """Every board's request schedule, in board-id order.

    Schedules depend only on ``(seed, board_id, traffic)`` — never on the
    policy or engine — so one generation pass serves a whole frontier.
    """
    region_map = config.region_map()
    return [
        generate_schedule(
            config.traffic,
            board_rng(config.seed, _board_id(i)),
            region_map,
            config.requests_per_board,
            mean_gap_ns=config.mean_gap_ns,
        )
        for i in range(config.n_boards)
    ]


def _build_kernel_board(
    config: FleetConfig,
    sim: Simulator,
    arch: ReconfigArchitecture,
    region_map: dict[str, list[str]],
    index: int,
    schedule: list[tuple[int, str, str]],
    traced: bool,
) -> Board:
    bundle = get_bundle(config.policy)
    future = future_from_schedule(schedule) if bundle.needs_future else None
    runtime_policy = create_policy(
        config.policy, future=future, region_slots=config.region_slots
    )
    store = arch.make_store()
    for region, modules in region_map.items():
        for module in modules:
            store.register(region, module, config.bitstream_bytes)
    board_id = _board_id(index)
    trace = Trace(scope=board_id) if traced else None
    board = Board(
        board_id, sim, arch, store,
        policy=runtime_policy.prefetch,
        eviction=runtime_policy.eviction,
        region_slots=runtime_policy.region_slots,
        trace=trace,
    )
    # Every region ships its first module in the startup bitstream, so
    # boards start warm and the first request is not always a miss.
    for region, modules in region_map.items():
        board.preload(region, modules[0])
    board.start(schedule)
    return board


def _run_kernel_boards(
    config: FleetConfig,
    arch: ReconfigArchitecture,
    schedules: Sequence[list[tuple[int, str, str]]],
    first_index: int = 0,
) -> tuple[list[Board], Simulator]:
    """Build and run a (sub)fleet on one shared reference kernel."""
    region_map = config.region_map()
    sim = Simulator()
    boards = [
        _build_kernel_board(
            config, sim, arch, region_map,
            first_index + offset, schedule,
            traced=(first_index + offset) < config.trace_boards,
        )
        for offset, schedule in enumerate(schedules)
    ]
    sim.run()
    return boards, sim


def run_fleet(
    config: FleetConfig,
    engine: Optional[str] = None,
    schedules: Optional[list[list[tuple[int, str, str]]]] = None,
    telemetry: Optional["TimeSeriesStore"] = None,
) -> FleetReport:
    """Run one policy over the whole fleet.

    ``engine`` overrides ``config.engine``; pass pre-generated
    ``schedules`` (from :func:`generate_fleet_schedules`) to amortise
    traffic generation across runs — they must match ``config``.

    ``telemetry`` is an optional sim-clock
    :class:`~repro.obs.telemetry.TimeSeriesStore`: the fast engine records
    windowed per-policy hit/stall/port series through
    :class:`FleetTelemetryRecorder` (flushed per step-batch, digest parity
    untouched), and any kernel-run traced boards contribute load-latency
    and residency series via the obs trace bridge.
    """
    get_bundle(config.policy)  # fail fast on unknown names
    engine = engine if engine is not None else config.engine
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ValueError(f"unknown engine {engine!r}; known engines: {known}")
    arch = _architecture(config.architecture)
    t0 = time.perf_counter()
    if schedules is None:
        schedules = generate_fleet_schedules(config)
    elif len(schedules) != config.n_boards:
        raise ValueError(
            f"got {len(schedules)} schedules for {config.n_boards} boards"
        )
    engine_stats: Optional[FastRunStats] = None
    if engine == "kernel":
        boards, sim = _run_kernel_boards(config, arch, schedules)
        per_board = [board.stats.to_dict() for board in boards]
        end_time_ns = sim.now
        open_traces = [board.trace for board in boards if board.trace is not None]
    else:
        traced = min(config.trace_boards, config.n_boards)
        traced_boards: list[Board] = []
        traced_end = 0
        if traced:
            traced_boards, traced_sim = _run_kernel_boards(
                config, arch, schedules[:traced]
            )
            traced_end = traced_sim.now
        recorder = FleetTelemetryRecorder() if telemetry is not None else None
        fast_rows, fast_ends, engine_stats = simulate_fast_fleet(
            config, schedules[traced:], arch, recorder=recorder
        )
        if recorder is not None:
            recorder.flush(telemetry, policy=config.policy, n_boards=config.n_boards)
        per_board = [board.stats.to_dict() for board in traced_boards] + fast_rows
        end_time_ns = max([traced_end, *fast_ends]) if (traced or fast_ends) else 0
        open_traces = [b.trace for b in traced_boards if b.trace is not None]
    wall_s = time.perf_counter() - t0
    totals: dict[str, int] = {}
    for stats in per_board:
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    traces = []
    for trace in open_traces:
        trace.close_open(end_time_ns)
        traces.append(trace)
    if telemetry is not None and traces:
        from repro.obs.bridge import record_trace_telemetry

        for trace in traces:
            record_trace_telemetry(telemetry, trace, policy=config.policy)
    return FleetReport(
        policy=config.policy,
        traffic=config.traffic,
        n_boards=config.n_boards,
        requests_per_board=config.requests_per_board,
        total_requests=config.n_boards * config.requests_per_board,
        end_time_ns=end_time_ns,
        wall_s=wall_s,
        boards=per_board,
        totals=totals,
        traces=traces,
        engine=engine,
        engine_stats=engine_stats,
    )


def run_frontier(
    config: FleetConfig,
    policies: list[str],
    engine: Optional[str] = None,
    telemetry: Optional["TimeSeriesStore"] = None,
) -> dict[str, FleetReport]:
    """Replay identical seeded traffic under each policy.

    Schedules depend only on ``(seed, board_id, traffic)``, so they are
    generated once and every policy sees the same demand stream — the
    resulting hit-rate / stall frontier compares management strategies,
    not luck (and not repeated traffic-generation cost).
    """
    schedules = generate_fleet_schedules(config)
    reports: dict[str, FleetReport] = {}
    for name in policies:
        reports[name] = run_fleet(
            replace(config, policy=name), engine=engine, schedules=schedules,
            telemetry=telemetry,
        )
    return reports


@dataclass(frozen=True)
class FleetJob:
    """A fleet run as a sweep-engine job (plugs into ParallelSweepEngine).

    The engine dispatches on ``execute()`` generically, so fleet points can
    ride the existing process-pool machinery alongside placement sweeps.
    """

    config: FleetConfig

    @property
    def job_id(self) -> str:
        # The human-readable prefix aids log scanning; the fingerprint
        # covers *every* config field (regions, slots, architecture,
        # mean gap, engine, ...) so distinct configs never collide in the
        # sweep-engine cache.
        c = self.config
        return (
            f"fleet-{c.policy}-{c.traffic}-{c.n_boards}x{c.requests_per_board}"
            f"-seed{c.seed}-{c.fingerprint()[:12]}"
        )

    def execute(self, attempt: int = 0, cache=None, observer=None) -> dict:
        report = run_fleet(self.config)
        return report.to_dict()
