"""The fleet driver: thousands of boards multiplexed on one event kernel.

Builds N independent :class:`~repro.runtime.board.Board` instances on a
single shared :class:`~repro.sim.Simulator`, gives each a seeded request
schedule, and runs the calendar once.  Boards interact only through the
kernel's event ordering — each owns its store, builder and manager — so
per-board results are a pure function of ``(seed, board_id, policy)`` and
the report digest is reproducible run-to-run and invariant under board
registration order.

``run_frontier`` replays the *same* seeded traffic against several policy
bundles, yielding the hit-rate / mean-stall frontier the policy zoo exists
to measure.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.reconfig.architectures import ReconfigArchitecture, all_cases
from repro.runtime.board import Board
from repro.runtime.policies import create_policy, get_bundle
from repro.runtime.traffic import board_rng, future_from_schedule, generate_schedule
from repro.sim import Simulator, Trace

__all__ = ["FleetConfig", "FleetReport", "FleetJob", "run_fleet", "run_frontier"]


def _architecture(name: str) -> ReconfigArchitecture:
    cases = {arch.name: arch for arch in all_cases()}
    try:
        return cases[name]
    except KeyError:
        known = ", ".join(sorted(cases))
        raise ValueError(f"unknown architecture {name!r}; known: {known}") from None


@dataclass(frozen=True)
class FleetConfig:
    """Parameters for one fleet run."""

    n_boards: int = 100
    requests_per_board: int = 200
    policy: str = "none"
    traffic: str = "poisson"
    seed: int = 0
    regions: int = 2
    modules_per_region: int = 4
    #: override the policy bundle's area budget (None = bundle default)
    region_slots: Optional[int] = None
    bitstream_bytes: int = 88_000
    architecture: str = "case_a_standalone"
    mean_gap_ns: int = 200_000
    #: the first N boards record full traces (scoped per board); tracing
    #: every board of a large fleet would dominate memory, so default off
    trace_boards: int = 0

    def region_map(self) -> dict[str, list[str]]:
        return {
            f"R{r}": [f"m{m}" for m in range(self.modules_per_region)]
            for r in range(self.regions)
        }


@dataclass
class FleetReport:
    """Outcome of one fleet run (one policy, one traffic pattern)."""

    policy: str
    traffic: str
    n_boards: int
    requests_per_board: int
    total_requests: int
    end_time_ns: int
    wall_s: float
    #: per-board stats dicts, in board-id order
    boards: list[dict] = field(default_factory=list)
    totals: dict = field(default_factory=dict)
    #: traces of the first ``trace_boards`` boards, scope = board id
    traces: list[Trace] = field(default_factory=list)

    @property
    def requests_per_sec(self) -> float:
        return self.total_requests / self.wall_s if self.wall_s else float("inf")

    @property
    def hit_rate(self) -> float:
        demands = self.totals.get("demand_requests", 0)
        if not demands:
            return 0.0
        hits = self.totals.get("instant_hits", 0) + self.totals.get("resident_hits", 0)
        return hits / demands

    @property
    def mean_stall_ns(self) -> float:
        demands = self.totals.get("demand_requests", 0)
        return self.totals.get("stall_ns", 0) / demands if demands else 0.0

    def digest(self) -> str:
        """Deterministic fingerprint of the simulated outcome.

        Covers every per-board counter and the kernel end time — not wall
        time — so two runs with the same config produce the same digest and
        any behavioural drift flips it.
        """
        payload = json.dumps(
            {"boards": self.boards, "end_time_ns": self.end_time_ns},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> str:
        return (
            f"fleet[{self.policy}/{self.traffic}]: {self.n_boards} boards x "
            f"{self.requests_per_board} requests in {self.wall_s:.2f}s wall "
            f"({self.requests_per_sec:,.0f} req/s) — hit rate {self.hit_rate:.1%}, "
            f"mean stall {self.mean_stall_ns / 1e3:.1f} us"
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "traffic": self.traffic,
            "n_boards": self.n_boards,
            "requests_per_board": self.requests_per_board,
            "total_requests": self.total_requests,
            "end_time_ns": self.end_time_ns,
            "wall_s": self.wall_s,
            "requests_per_sec": self.requests_per_sec,
            "hit_rate": self.hit_rate,
            "mean_stall_ns": self.mean_stall_ns,
            "totals": dict(self.totals),
            "digest": self.digest(),
        }


def run_fleet(config: FleetConfig) -> FleetReport:
    """Run one policy over the whole fleet on a single shared kernel."""
    bundle = get_bundle(config.policy)  # fail fast on unknown names
    arch = _architecture(config.architecture)
    region_map = config.region_map()
    sim = Simulator()
    boards: list[Board] = []
    t0 = time.perf_counter()
    for i in range(config.n_boards):
        board_id = f"b{i:04d}"
        rng = board_rng(config.seed, board_id)
        schedule = generate_schedule(
            config.traffic, rng, region_map, config.requests_per_board,
            mean_gap_ns=config.mean_gap_ns,
        )
        future = future_from_schedule(schedule) if bundle.needs_future else None
        runtime_policy = create_policy(
            config.policy, future=future, region_slots=config.region_slots
        )
        store = arch.make_store()
        for region, modules in region_map.items():
            for module in modules:
                store.register(region, module, config.bitstream_bytes)
        trace = Trace(scope=board_id) if i < config.trace_boards else None
        board = Board(
            board_id, sim, arch, store,
            policy=runtime_policy.prefetch,
            eviction=runtime_policy.eviction,
            region_slots=runtime_policy.region_slots,
            trace=trace,
        )
        # Every region ships its first module in the startup bitstream, so
        # boards start warm and the first request is not always a miss.
        for region, modules in region_map.items():
            board.preload(region, modules[0])
        board.start(schedule)
        boards.append(board)
    sim.run()
    wall_s = time.perf_counter() - t0
    per_board = [board.stats.to_dict() for board in boards]
    totals: dict[str, int] = {}
    for stats in per_board:
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    traces = []
    for board in boards:
        if board.trace is not None:
            board.trace.close_open(sim.now)
            traces.append(board.trace)
    return FleetReport(
        policy=config.policy,
        traffic=config.traffic,
        n_boards=config.n_boards,
        requests_per_board=config.requests_per_board,
        total_requests=config.n_boards * config.requests_per_board,
        end_time_ns=sim.now,
        wall_s=wall_s,
        boards=per_board,
        totals=totals,
        traces=traces,
    )


def run_frontier(config: FleetConfig, policies: list[str]) -> dict[str, FleetReport]:
    """Replay identical seeded traffic under each policy.

    Schedules depend only on ``(seed, board_id, traffic)``, so every policy
    sees the same demand stream and the resulting hit-rate / stall frontier
    compares management strategies, not luck.
    """
    reports: dict[str, FleetReport] = {}
    for name in policies:
        from dataclasses import replace

        reports[name] = run_fleet(replace(config, policy=name))
    return reports


@dataclass(frozen=True)
class FleetJob:
    """A fleet run as a sweep-engine job (plugs into ParallelSweepEngine).

    The engine dispatches on ``execute()`` generically, so fleet points can
    ride the existing process-pool machinery alongside placement sweeps.
    """

    config: FleetConfig

    @property
    def job_id(self) -> str:
        c = self.config
        return (
            f"fleet-{c.policy}-{c.traffic}-{c.n_boards}x{c.requests_per_board}"
            f"-seed{c.seed}"
        )

    def execute(self, attempt: int = 0, cache=None, observer=None) -> dict:
        report = run_fleet(self.config)
        return report.to_dict()
