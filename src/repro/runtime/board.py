"""The board abstraction: one reconfigurable platform on a shared kernel.

Historically the runtime stack assumed one platform per :class:`Simulator`
(``SystemSimulation`` built the simulator, builder, manager and executive as
one unit).  :class:`Board` factors that unit out and takes the simulator as a
*handle*, so M boards coexist on one event kernel: each board owns its
bitstream store, protocol builder, configuration manager and (optionally) an
executive runner, while the kernel's calendar interleaves all of them
deterministically — per-board event order is fixed by the kernel's FIFO
tie-break, independent of how many other boards share the calendar or in
which order they were registered.

Identity is namespaced per board through its :class:`~repro.sim.Trace`: each
board records into its own trace whose ``scope`` is the board name, and the
observability bridge renders each scope as its own Perfetto process lane.
Actor names *inside* a trace stay board-relative (``region.D1`` on every
board), so per-board traces compare byte-for-byte across boards and runs.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, Optional, Sequence

from repro.executive.interpreter import ExecutionReport, ExecutiveRunner
from repro.reconfig.architectures import ReconfigArchitecture
from repro.reconfig.eviction import EvictionPolicy
from repro.reconfig.manager import ManagerStats, ReconfigurationManager
from repro.reconfig.memory import BitstreamStore
from repro.reconfig.prefetch import PrefetchPolicy
from repro.sim import Simulator, Trace

__all__ = ["Board"]


class Board:
    """One platform instance (store + builder + manager) on a shared kernel."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        architecture: ReconfigArchitecture,
        store: BitstreamStore,
        *,
        policy: Optional[PrefetchPolicy] = None,
        eviction: Optional[EvictionPolicy] = None,
        region_slots: int = 1,
        trace: Optional[Trace] = None,
        strict_crc: bool = True,
        verify_readback: bool = False,
    ):
        self.name = name
        self.sim = sim
        self.architecture = architecture
        self.store = store
        self.trace = trace
        self.builder = architecture.make_builder(sim, store, trace=trace)
        self.manager = ReconfigurationManager(
            sim,
            self.builder,
            policy=policy,
            request_latency_ns=architecture.request_latency_ns,
            trace=trace,
            strict_crc=strict_crc,
            verify_readback=verify_readback,
            region_slots=region_slots,
            eviction=eviction,
        )
        self.runner: Optional[ExecutiveRunner] = None
        #: set once drive() finishes the board's whole schedule
        self.done_at_ns: Optional[int] = None

    # -- setup ---------------------------------------------------------------

    def preload(self, region: str, module: str) -> None:
        """Mark a module as shipped in the initial full bitstream."""
        self.manager.preload(region, module)

    def attach_executive(
        self,
        program: Any,
        n_iterations: int,
        *,
        bindings: Optional[dict[str, Any]] = None,
        selector_values: Optional[dict[str, Callable[[int], Hashable]]] = None,
        capture: Optional[set[str]] = None,
    ) -> ExecutiveRunner:
        """Wire an executive to this board's configuration manager.

        The runner shares the board's simulator and trace; calling its
        ``run()`` drives the kernel, so use it only for single-board runs —
        fleet boards are driven by request schedules instead.
        """
        runner = ExecutiveRunner(
            program,
            n_iterations=n_iterations,
            sim=self.sim,
            bindings=bindings,
            selector_values=selector_values,
            config_service=self.manager,
            capture=capture,
        )
        if self.trace is not None:
            runner.trace = self.trace
        self.runner = runner
        return runner

    def run_executive(self) -> ExecutionReport:
        """Run the attached executive to completion (single-board use)."""
        if self.runner is None:
            raise RuntimeError(f"board {self.name!r} has no attached executive")
        return self.runner.run()

    # -- fleet driving -------------------------------------------------------

    def start(self, schedule: Sequence[tuple[int, str, str]]) -> None:
        """Spawn the request-driver process for a pre-generated schedule.

        The process replays ``(gap_ns, region, module)`` requests against the
        configuration manager; the caller runs the shared kernel once all
        boards are started.
        """
        self.sim.process(self._drive(schedule), name=f"drive:{self.name}")

    def _drive(self, schedule: Sequence[tuple[int, str, str]]) -> Generator:
        sim, manager = self.sim, self.manager
        for gap_ns, region, module in schedule:
            # The Select register is written when the request is *known*,
            # the data arrives a gap later — that window is exactly what
            # announcement-driven prefetchers (the paper's "fixed") exploit.
            manager.notify_select(region, module)
            if gap_ns:
                yield sim.timeout(gap_ns)
            yield manager.ensure_loaded(region, module)
        self.done_at_ns = sim.now

    # -- results -------------------------------------------------------------

    @property
    def stats(self) -> ManagerStats:
        return self.manager.stats
