"""Unified observability: hierarchical tracing, metrics and exporters.

The flow spans many cooperating layers — the staged pipeline, the parallel
sweep engine and its spawn workers, the adequation schedulers and the
runtime reconfiguration manager running on the discrete-event kernel.  This
package gives them one tracing/metrics vocabulary:

- :mod:`repro.obs.tracer` — trace-id/span-id/parent-id spans with attribute
  bags; a zero-cost no-op tracer is the ambient default
  (:func:`get_tracer`), a recording :class:`Tracer` is installed per traced
  run (:func:`use_tracer`).  :class:`SpanContext` pickles cleanly so the
  sweep engine propagates it over worker pipes and worker stage spans
  parent under their job span across the process boundary.
- :mod:`repro.obs.metrics` — counters, gauges and fixed-boundary histograms
  with deterministic snapshots (:func:`get_metrics` / :func:`use_metrics`).
- :mod:`repro.obs.bridge` — re-bases the sim kernel's virtual-time trace
  onto the same span model and feeds the pre-existing stat bags
  (``SchedulerStats``, ``ManagerStats``/``ReconfigStats``, ``CacheStats``)
  into the registry.
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable,
  including ``ph:"C"`` counter tracks from metrics snapshots and windowed
  telemetry stores), the Fig. 4 per-region residency Gantt (text and SVG)
  and run manifests.
- :mod:`repro.obs.validate` — the trace-schema validator CI gates on.
- :mod:`repro.obs.telemetry` — streaming dimensionally-labeled time-series
  (:class:`TimeSeriesStore`: windowed counters/gauges/quantile sketches
  keyed by label sets) and declarative SLO rules
  (:class:`SloRule`/:class:`SloMonitor`) with typed breach events; the
  ambient :class:`Telemetry` hub (:func:`get_telemetry`/:func:`use_telemetry`)
  is what the engines write through.
- :mod:`repro.obs.sketch` — the mergeable DDSketch-style
  :class:`QuantileSketch` behind quantile series, plus the
  :class:`ExactQuantiles` test reference.
- :mod:`repro.obs.history` — benchmark headline history
  (``benchmarks/results/HISTORY.jsonl``) and the :func:`bench_check`
  regression gate the CLI exposes as ``repro bench-check``.
- :mod:`repro.obs.dashboard` — the ``fleet --live`` terminal dashboard
  renderers.
"""

from repro.obs.tracer import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
    new_trace_id,
    set_tracer,
    use_tracer,
)
from repro.obs.metrics import (
    STAGE_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.bridge import (
    record_cache_stats,
    record_config_service_stats,
    record_fleet_stats,
    record_manager_stats,
    record_scheduler_stats,
    record_search_stats,
    spans_from_sim_trace,
)
from repro.obs.export import (
    build_manifest,
    chrome_trace,
    counter_events_from_snapshot,
    counter_events_from_store,
    manifest_path_for,
    region_timeline,
    render_region_gantt,
    render_region_gantt_svg,
    write_chrome_trace,
    write_manifest,
)
from repro.obs.validate import validate_chrome_trace, validate_trace_file
from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    ExactQuantiles,
    QuantileSketch,
)
from repro.obs.telemetry import (
    SloBreach,
    SloMonitor,
    SloRule,
    Telemetry,
    TimeSeriesStore,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    CheckResult,
    HistoryEntry,
    append_from_result,
    backfill,
    bench_check,
    extract_headline,
    load_history,
)
from repro.obs.dashboard import render_dashboard, render_fleet_panel, sparkline

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanContext",
    "Tracer",
    "get_tracer",
    "new_trace_id",
    "set_tracer",
    "use_tracer",
    "STAGE_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "record_cache_stats",
    "record_config_service_stats",
    "record_fleet_stats",
    "record_manager_stats",
    "record_scheduler_stats",
    "record_search_stats",
    "spans_from_sim_trace",
    "build_manifest",
    "chrome_trace",
    "manifest_path_for",
    "region_timeline",
    "render_region_gantt",
    "render_region_gantt_svg",
    "write_chrome_trace",
    "write_manifest",
    "validate_chrome_trace",
    "validate_trace_file",
    "counter_events_from_snapshot",
    "counter_events_from_store",
    "DEFAULT_RELATIVE_ACCURACY",
    "ExactQuantiles",
    "QuantileSketch",
    "SloBreach",
    "SloMonitor",
    "SloRule",
    "Telemetry",
    "TimeSeriesStore",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "DEFAULT_HISTORY_PATH",
    "CheckResult",
    "HistoryEntry",
    "append_from_result",
    "backfill",
    "bench_check",
    "extract_headline",
    "load_history",
    "render_dashboard",
    "render_fleet_panel",
    "sparkline",
]
