"""Unified observability: hierarchical tracing, metrics and exporters.

The flow spans many cooperating layers — the staged pipeline, the parallel
sweep engine and its spawn workers, the adequation schedulers and the
runtime reconfiguration manager running on the discrete-event kernel.  This
package gives them one tracing/metrics vocabulary:

- :mod:`repro.obs.tracer` — trace-id/span-id/parent-id spans with attribute
  bags; a zero-cost no-op tracer is the ambient default
  (:func:`get_tracer`), a recording :class:`Tracer` is installed per traced
  run (:func:`use_tracer`).  :class:`SpanContext` pickles cleanly so the
  sweep engine propagates it over worker pipes and worker stage spans
  parent under their job span across the process boundary.
- :mod:`repro.obs.metrics` — counters, gauges and fixed-boundary histograms
  with deterministic snapshots (:func:`get_metrics` / :func:`use_metrics`).
- :mod:`repro.obs.bridge` — re-bases the sim kernel's virtual-time trace
  onto the same span model and feeds the pre-existing stat bags
  (``SchedulerStats``, ``ManagerStats``/``ReconfigStats``, ``CacheStats``)
  into the registry.
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable),
  the Fig. 4 per-region residency Gantt (text and SVG) and run manifests.
- :mod:`repro.obs.validate` — the trace-schema validator CI gates on.
"""

from repro.obs.tracer import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
    new_trace_id,
    set_tracer,
    use_tracer,
)
from repro.obs.metrics import (
    STAGE_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.bridge import (
    record_cache_stats,
    record_config_service_stats,
    record_fleet_stats,
    record_manager_stats,
    record_scheduler_stats,
    record_search_stats,
    spans_from_sim_trace,
)
from repro.obs.export import (
    build_manifest,
    chrome_trace,
    manifest_path_for,
    region_timeline,
    render_region_gantt,
    render_region_gantt_svg,
    write_chrome_trace,
    write_manifest,
)
from repro.obs.validate import validate_chrome_trace, validate_trace_file

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanContext",
    "Tracer",
    "get_tracer",
    "new_trace_id",
    "set_tracer",
    "use_tracer",
    "STAGE_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "record_cache_stats",
    "record_config_service_stats",
    "record_fleet_stats",
    "record_manager_stats",
    "record_scheduler_stats",
    "record_search_stats",
    "spans_from_sim_trace",
    "build_manifest",
    "chrome_trace",
    "manifest_path_for",
    "region_timeline",
    "render_region_gantt",
    "render_region_gantt_svg",
    "write_chrome_trace",
    "write_manifest",
    "validate_chrome_trace",
    "validate_trace_file",
]
