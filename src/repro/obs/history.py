"""Benchmark telemetry history and the regression gate.

``BENCH_*.json`` files are write-once snapshots: each benchmark run
overwrites the last, so the repo never learns whether a headline drifted.
This module gives benchmarks a *trajectory*: every result appends one
schema-versioned entry (bench name, headline metric, value, direction,
host fingerprint, digest detail) to ``benchmarks/results/HISTORY.jsonl``,
and :func:`bench_check` — surfaced as ``repro bench-check`` — fails when
the latest entry regresses more than a threshold against the trailing
median of its predecessors.

Design points:

- **Headline extraction is centralized** in :data:`HEADLINES` rather than
  spread across bench files: ``benchmarks/conftest.write_result`` calls
  :func:`append_from_result` for every benchmark, and :func:`backfill`
  replays already-committed ``BENCH_*.json`` files through the same
  extractors, so history and backfill can never disagree about what a
  bench's headline is.
- **Trailing median, not last value**, is the baseline: one lucky run
  cannot ratchet the bar to a level no honest run clears, and one noisy
  run cannot hide a real regression established over several entries.
- **Smoke and full runs never compare against each other** (an entry's
  ``smoke`` flag is part of its identity) and entries from a schema newer
  than this reader refuse to load — a half-understood history is worse
  than none.
"""

from __future__ import annotations

import json
import math
import os
import platform
import socket
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "HEADLINES",
    "HistoryEntry",
    "CheckResult",
    "host_fingerprint",
    "extract_headline",
    "append_entry",
    "append_from_result",
    "load_history",
    "bench_check",
    "backfill",
]

#: Version stamped on every history entry.
HISTORY_SCHEMA_VERSION = 1

#: Default location, relative to the repository root.
DEFAULT_HISTORY_PATH = Path("benchmarks") / "results" / "HISTORY.jsonl"


def _scheduler_headline(payload: Mapping) -> float:
    """Best incremental-vs-naive speedup at the largest problem size."""
    rows = payload.get("rows") or []
    if not rows:
        raise KeyError("rows")
    largest = max(int(r.get("operations", 0)) for r in rows)
    return max(
        float(r["speedup"]) for r in rows if int(r.get("operations", 0)) == largest
    )


def _search_headline(payload: Mapping) -> float:
    """Annealer evaluations per second (budget-independent throughput)."""
    return float(payload["evaluations"]) / float(payload["wall_s"])


def _sweep_headline(payload: Mapping) -> float:
    """Warm-pool speedup on the largest parallel grid."""
    runs = payload.get("runs") or []
    speedups = [float(r["speedup"]) for r in runs if "speedup" in r]
    if not speedups:
        raise KeyError("speedup")
    return max(speedups)


#: bench name -> (metric name, extractor, higher_is_better, unit).
#: The extractor is a dotted path into the result payload or a callable.
HEADLINES: dict[str, tuple[str, Union[str, Callable[[Mapping], float]], bool, str]] = {
    "fleet_throughput": (
        "fast.requests_per_sec", "headline.fast.requests_per_sec", True, "req/s",
    ),
    "linklevel_throughput": ("overall_speedup", "overall_speedup", True, "x"),
    "obs_overhead": ("noop_span_ns", "noop_span_ns", False, "ns"),
    "obs_telemetry_overhead": (
        "telemetry_overhead_pct", "telemetry_overhead_pct", False, "%",
    ),
    "scheduler_scaling": ("speedup_at_largest", _scheduler_headline, True, "x"),
    "search_anneal": ("evaluations_per_sec", _search_headline, True, "evals/s"),
    "sweep_parallel": ("grid_speedup", _sweep_headline, True, "x"),
}


@dataclass(frozen=True)
class HistoryEntry:
    """One benchmark headline observation."""

    bench: str
    metric: str
    value: float
    higher_is_better: bool
    unit: str
    smoke: bool
    recorded_at: str
    host: Mapping[str, object] = field(default_factory=dict)
    detail: Mapping[str, object] = field(default_factory=dict)
    schema: int = HISTORY_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "bench": self.bench,
            "metric": self.metric,
            "value": self.value,
            "higher_is_better": self.higher_is_better,
            "unit": self.unit,
            "smoke": self.smoke,
            "recorded_at": self.recorded_at,
            "host": dict(self.host),
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, row: Mapping) -> "HistoryEntry":
        schema = int(row.get("schema", 0))
        if schema > HISTORY_SCHEMA_VERSION:
            raise ValueError(
                f"history entry schema {schema} is newer than supported "
                f"{HISTORY_SCHEMA_VERSION}"
            )
        return cls(
            bench=str(row["bench"]),
            metric=str(row["metric"]),
            value=float(row["value"]),
            higher_is_better=bool(row.get("higher_is_better", True)),
            unit=str(row.get("unit", "")),
            smoke=bool(row.get("smoke", False)),
            recorded_at=str(row.get("recorded_at", "")),
            host=dict(row.get("host", {})),
            detail=dict(row.get("detail", {})),
            schema=schema,
        )


def host_fingerprint() -> dict:
    """Where a measurement came from — context for cross-host noise."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def _dig(payload: Mapping, path: str) -> float:
    value: object = payload
    for part in path.split("."):
        value = value[part]  # type: ignore[index]
    return float(value)  # type: ignore[arg-type]


def extract_headline(bench: str, payload: Mapping) -> Optional[HistoryEntry]:
    """Build an entry from a bench result payload; None for unknown benches.

    ``bench`` may carry a ``_smoke`` suffix (the file-name convention);
    the suffix selects the smoke lineage but the registry key is the base
    name.
    """
    base = bench[:-len("_smoke")] if bench.endswith("_smoke") else bench
    spec = HEADLINES.get(base)
    if spec is None:
        return None
    metric, extractor, higher_is_better, unit = spec
    value = extractor(payload) if callable(extractor) else _dig(payload, extractor)
    if not math.isfinite(value):
        raise ValueError(f"bench {bench!r}: headline {metric!r} is not finite")
    detail = {}
    for key in ("digest", "best_of", "budget"):
        if key in payload:
            detail[key] = payload[key]
    headline = payload.get("headline")
    if isinstance(headline, Mapping) and "digest" in headline:
        detail["digest"] = headline["digest"]
    return HistoryEntry(
        bench=base,
        metric=metric,
        value=value,
        higher_is_better=higher_is_better,
        unit=unit,
        smoke=bool(payload.get("smoke", bench.endswith("_smoke"))),
        recorded_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        host=host_fingerprint(),
        detail=detail,
    )


def append_entry(path: Union[str, Path], entry: HistoryEntry) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as stream:
        stream.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")


def append_from_result(
    path: Union[str, Path], bench: str, payload: Mapping
) -> Optional[HistoryEntry]:
    """Extract-and-append in one step (the ``write_result`` hook)."""
    entry = extract_headline(bench, payload)
    if entry is not None:
        append_entry(path, entry)
    return entry


def load_history(path: Union[str, Path]) -> list[HistoryEntry]:
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    with path.open("r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(HistoryEntry.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed history entry: {exc}")
    return entries


@dataclass(frozen=True)
class CheckResult:
    """The gate's verdict for one (bench, metric, smoke) lineage."""

    bench: str
    metric: str
    smoke: bool
    status: str  # "ok" | "regression" | "insufficient-history"
    latest: float
    baseline: Optional[float]  # trailing median of prior entries
    change_pct: Optional[float]  # signed; positive = improvement
    unit: str
    n_prior: int

    @property
    def ok(self) -> bool:
        return self.status != "regression"

    def describe(self) -> str:
        name = f"{self.bench}/{self.metric}" + (" [smoke]" if self.smoke else "")
        if self.status == "insufficient-history":
            return f"{name}: {self.latest:g} {self.unit} (no prior entries; pass)"
        sign = "+" if self.change_pct >= 0 else ""
        return (
            f"{name}: {self.latest:g} {self.unit} vs trailing median "
            f"{self.baseline:g} ({sign}{self.change_pct:.1f}%) -> {self.status}"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def bench_check(
    path: Union[str, Path],
    threshold_pct: float = 10.0,
    trailing: int = 5,
    benches: Optional[Iterable[str]] = None,
) -> list[CheckResult]:
    """Judge the latest entry of every lineage against its trailing median.

    A lineage is ``(bench, metric, smoke)``. The baseline is the median of
    up to ``trailing`` entries *before* the latest; a lineage with no
    prior entries passes as ``insufficient-history`` (the gate cannot
    invent a baseline).  Regression means the latest is worse than the
    baseline by more than ``threshold_pct`` percent, direction-aware.
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be >= 0")
    wanted = set(benches) if benches is not None else None
    lineages: dict[tuple[str, str, bool], list[HistoryEntry]] = {}
    for entry in load_history(path):
        if wanted is not None and entry.bench not in wanted:
            continue
        lineages.setdefault((entry.bench, entry.metric, entry.smoke), []).append(entry)

    results = []
    for (bench, metric, smoke), entries in sorted(lineages.items()):
        latest = entries[-1]
        prior = entries[:-1][-trailing:]
        if not prior:
            results.append(
                CheckResult(
                    bench=bench, metric=metric, smoke=smoke,
                    status="insufficient-history", latest=latest.value,
                    baseline=None, change_pct=None, unit=latest.unit, n_prior=0,
                )
            )
            continue
        baseline = _median([e.value for e in prior])
        if baseline == 0:
            change_pct = 0.0 if latest.value == 0 else math.inf
        else:
            change_pct = (latest.value - baseline) / abs(baseline) * 100.0
        if not latest.higher_is_better:
            change_pct = -change_pct  # normalize: positive = improvement
        status = "regression" if change_pct < -threshold_pct else "ok"
        results.append(
            CheckResult(
                bench=bench, metric=metric, smoke=smoke, status=status,
                latest=latest.value, baseline=baseline, change_pct=change_pct,
                unit=latest.unit, n_prior=len(prior),
            )
        )
    return results


def backfill(
    results_dir: Union[str, Path],
    history_path: Union[str, Path],
    skip_existing: bool = True,
) -> list[HistoryEntry]:
    """Seed history from committed ``BENCH_*.json`` snapshots.

    Replays each file through the same :data:`HEADLINES` extractors the
    live path uses.  With ``skip_existing`` (the default), lineages that
    already have history are left alone so re-running backfill is
    idempotent.
    """
    results_dir = Path(results_dir)
    existing = {
        (e.bench, e.metric, e.smoke) for e in load_history(history_path)
    }
    appended = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        bench = path.stem[len("BENCH_"):]
        payload = json.loads(path.read_text(encoding="utf-8"))
        entry = extract_headline(bench, payload)
        if entry is None:
            continue
        if skip_existing and (entry.bench, entry.metric, entry.smoke) in existing:
            continue
        row = entry.to_dict()
        row["detail"]["backfilled_from"] = path.name
        entry = HistoryEntry.from_dict(row)
        append_entry(history_path, entry)
        appended.append(entry)
    return appended
