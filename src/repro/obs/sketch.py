"""Mergeable quantile sketches with a bounded relative error.

A streaming fleet run produces millions of latency samples per window;
storing them exactly (for p99 curves) would dwarf the simulation state.
:class:`QuantileSketch` is a DDSketch-style logarithmic-bucket sketch
(Masson, Rim & Lee, VLDB 2019): values collapse into geometric buckets
``gamma**i`` with ``gamma = (1 + alpha) / (1 - alpha)``, so any reported
quantile is within a *relative* error ``alpha`` of the exact order
statistic — p99 of a 4 ms stall distribution is correct to ``alpha * 4 ms``
no matter how many samples streamed through.  Two sketch properties carry
the whole telemetry design:

- **merge is exact**: bucket counts add, so per-window sketches from
  different boards, workers or processes fold together without widening the
  error bound (merge is associative and commutative — property-tested);
- **memory is bounded** by the dynamic range, not the sample count: the
  fleet's stall range (0 .. tens of ms in ns units) needs a few hundred
  buckets at the default 1% accuracy.

:class:`ExactQuantiles` keeps every sample and answers the same quantile
queries exactly.  It exists *only* as the reference the tests compare the
sketch against (the declared bound is asserted property-style); production
paths never instantiate it.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = ["QuantileSketch", "ExactQuantiles", "DEFAULT_RELATIVE_ACCURACY"]

#: 1% relative accuracy: p99 of a millisecond-scale stall is exact to ~10 us.
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """DDSketch-style mergeable quantile sketch (relative-error bounded).

    Non-negative values only (latencies, durations, rates).  Values below
    ``min_value`` (including exact zeros) collapse into one dedicated zero
    bucket — distinguishing a 0.1 ns stall from a 0.3 ns stall is below any
    useful resolution and an unbounded bucket range would defeat the memory
    bound.
    """

    __slots__ = ("alpha", "gamma", "_log_gamma", "min_value", "_buckets",
                 "zero_count", "count", "sum", "_min", "_max")

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        min_value: float = 1e-9,
    ):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        self.alpha = float(relative_accuracy)
        self.gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self.gamma)
        self.min_value = float(min_value)
        self._buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ---------------------------------------------------------

    def _index(self, value: float) -> int:
        # ceil(log_gamma(v)): bucket i covers (gamma**(i-1), gamma**i], whose
        # midpoint-estimate 2*gamma**i/(gamma+1) is within alpha relatively.
        return math.ceil(math.log(value) / self._log_gamma)

    def add(self, value: Union[int, float], count: int = 1) -> None:
        """Record ``value`` ``count`` times."""
        value = float(value)
        if value < 0.0 or math.isnan(value) or math.isinf(value):
            raise ValueError(f"sketch values must be finite and >= 0, got {value}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if value < self.min_value:
            self.zero_count += count
        else:
            index = self._index(value)
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += count
        self.sum += value * count
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def add_array(self, values: np.ndarray) -> None:
        """Vectorized :meth:`add` — the fast engine's per-batch flush path.

        One ``log`` over the whole array plus a ``unique`` per batch keeps
        telemetry cost per step-batch at numpy speed (no Python loop over
        samples).
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        if np.any(values < 0.0) or not np.all(np.isfinite(values)):
            raise ValueError("sketch values must be finite and >= 0")
        small = values < self.min_value
        n_small = int(small.sum())
        if n_small:
            self.zero_count += n_small
        large = values[~small]
        if large.size:
            indices = np.ceil(np.log(large) / self._log_gamma).astype(np.int64)
            for index, count in zip(*np.unique(indices, return_counts=True)):
                key = int(index)
                self._buckets[key] = self._buckets.get(key, 0) + int(count)
            self._min = min(self._min, float(large.min()))
            self._max = max(self._max, float(large.max()))
        if n_small:
            small_vals = values[small]
            self._min = min(self._min, float(small_vals.min()))
            self._max = max(self._max, float(small_vals.max()))
        self.count += int(values.size)
        self.sum += float(values.sum())

    # -- queries -----------------------------------------------------------

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (rank ``floor(q * (n - 1))``).

        Within ``alpha`` relative error of
        ``sorted(values)[floor(q * (n - 1))]`` — the rank definition
        :meth:`ExactQuantiles.quantile` uses, so the bound is testable
        verbatim.  Returns 0.0 on an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = math.floor(q * (self.count - 1))
        if rank < self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative > rank:
                # midpoint of (gamma**(i-1), gamma**i] in relative terms
                return 2.0 * self.gamma ** index / (self.gamma + 1.0)
        return self._max  # pragma: no cover - cumulative always reaches count

    def quantiles(self, qs: Sequence[float]) -> list[float]:
        return [self.quantile(q) for q in qs]

    # -- merge / serialization --------------------------------------------

    def _check_compatible(self, other: "QuantileSketch") -> None:
        if abs(other.alpha - self.alpha) > 1e-12 or abs(other.min_value - self.min_value) > 1e-30:
            raise ValueError(
                f"cannot merge sketches with different parameters "
                f"(alpha {self.alpha} vs {other.alpha}, "
                f"min_value {self.min_value} vs {other.min_value})"
            )

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` in (exact: bucket counts add, bound unchanged)."""
        self._check_compatible(other)
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    def to_dict(self) -> dict:
        """JSON-safe snapshot; :meth:`from_dict` round-trips it exactly."""
        return {
            "type": "sketch",
            "alpha": self.alpha,
            "min_value": self.min_value,
            "count": self.count,
            "sum": self.sum,
            "zero_count": self.zero_count,
            "min": self.min,
            "max": self.max,
            # sorted for deterministic serialization (manifest diffs)
            "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "QuantileSketch":
        sketch = cls(
            relative_accuracy=payload.get("alpha", DEFAULT_RELATIVE_ACCURACY),
            min_value=payload.get("min_value", 1e-9),
        )
        sketch._buckets = {int(k): int(v) for k, v in payload.get("buckets", {}).items()}
        sketch.zero_count = int(payload.get("zero_count", 0))
        sketch.count = int(payload.get("count", 0))
        sketch.sum = float(payload.get("sum", 0.0))
        if sketch.count:
            sketch._min = float(payload.get("min", 0.0))
            sketch._max = float(payload.get("max", 0.0))
        return sketch

    def summary(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
        """The compact per-window digest the JSONL stream carries."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        for q in qs:
            out[f"p{round(q * 100):02d}"] = self.quantile(q)
        return out

    def __len__(self) -> int:
        return len(self._buckets) + (1 if self.zero_count else 0)


class ExactQuantiles:
    """Exact reference: stores every value (tests only, never production)."""

    __slots__ = ("_values", "_sorted")

    def __init__(self, values: Optional[Iterable[float]] = None):
        self._values: list[float] = list(values) if values is not None else []
        self._sorted = False

    def add(self, value: Union[int, float], count: int = 1) -> None:
        if value < 0.0:
            raise ValueError(f"values must be >= 0, got {value}")
        self._values.extend([float(value)] * count)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    def quantile(self, q: float) -> float:
        """``sorted(values)[floor(q * (n - 1))]`` — the sketch's rank model."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values[math.floor(q * (len(self._values) - 1))]
