"""Bridges between the observability layer and the repo's older islands.

- :func:`spans_from_sim_trace` re-bases the discrete-event kernel's
  :class:`repro.sim.Trace` spans onto the unified tracer model: every sim
  :class:`repro.sim.Span` becomes an :class:`repro.obs.Span` in the
  ``"sim"`` clock domain (virtual nanoseconds), parented under a given span
  context so runtime-simulation activity hangs off the flow/job that ran it.
- ``record_*_stats`` feed the pre-existing counter bags —
  :class:`~repro.aaa.scheduler.SchedulerStats`,
  :class:`~repro.reconfig.manager.ManagerStats` (a.k.a. ``ReconfigStats``),
  :class:`~repro.flows.pipeline.CacheStats` and the
  :class:`~repro.executive.interpreter.FixedLatencyConfigService` counters —
  into a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, SpanContext, new_trace_id

__all__ = [
    "spans_from_sim_trace",
    "record_trace_telemetry",
    "record_scheduler_stats",
    "record_manager_stats",
    "record_fleet_stats",
    "record_cache_stats",
    "record_config_service_stats",
    "record_search_stats",
]

_BRIDGE_SEQ = itertools.count(1)


def spans_from_sim_trace(
    trace,
    parent: Optional[SpanContext] = None,
    process: Optional[str] = None,
    include_kinds: Optional[Sequence[str]] = None,
) -> list[Span]:
    """Sim-kernel trace spans as unified ``clock="sim"`` spans.

    ``parent`` (usually the job or simulation span on the wall clock)
    becomes every bridged span's parent, so the trace tree stays connected
    across the clock-domain boundary.  ``include_kinds`` filters by sim span
    kind (``compute``, ``comm``, ``reconfig``, ``prefetch``, ``resident``…).

    ``process`` names the Perfetto process lane.  When omitted it falls back
    to the trace's own ``scope`` (the per-board namespace a fleet run sets),
    then to ``"sim"`` — so a multi-board trace set renders one lane per
    board without callers plumbing names through.
    """
    if process is None:
        process = getattr(trace, "scope", "") or "sim"
    trace_id = parent.trace_id if parent is not None else new_trace_id()
    parent_id = parent.span_id if parent is not None else None
    prefix = f"sim{next(_BRIDGE_SEQ)}-"
    out: list[Span] = []
    for i, sim_span in enumerate(trace.spans):
        if include_kinds is not None and sim_span.kind not in include_kinds:
            continue
        attributes = {"actor": sim_span.actor, "kind": sim_span.kind}
        if sim_span.detail:
            attributes["detail"] = sim_span.detail
        # Region-scoped spans (the reconfiguration manager's residency and
        # load intervals) expose region/module directly for the Gantt view.
        if sim_span.actor.startswith("region."):
            attributes["region"] = sim_span.actor[len("region."):]
            if sim_span.detail:
                attributes["module"] = sim_span.detail
        name = f"{sim_span.kind}:{sim_span.detail}" if sim_span.detail else sim_span.kind
        out.append(
            Span(
                name=name,
                context=SpanContext(
                    trace_id=trace_id, span_id=f"{prefix}{i + 1}", parent_id=parent_id
                ),
                start_ns=sim_span.start,
                duration_ns=sim_span.duration,
                clock="sim",
                process=process,
                track=sim_span.actor,
                attributes=attributes,
            )
        )
    return out


def record_trace_telemetry(store, trace, **labels) -> int:
    """Windowed telemetry from a (closed) sim-kernel trace.

    This is the DES kernel's road into the time-series layer: the kernel
    already records everything as :class:`repro.sim.Trace` spans, so
    instead of hooking the manager's hot path we fold the trace's load and
    residency intervals into a sim-clock
    :class:`~repro.obs.telemetry.TimeSeriesStore` after the run:

    - ``fleet.loads`` — counter per window of load *starts*, labeled by
      span kind (``load`` = demand, ``prefetch`` = speculative);
    - ``fleet.reconfig_ns`` — quantile sketch of load durations (the p99
      reconfiguration-latency SLO input), window of the start time;
    - ``fleet.port_busy_ns`` — configuration-port occupancy attributed to
      the window the transfer started in.

    Extra ``labels`` (typically ``policy=...``) apply to every series.
    Returns the number of spans folded in.  Close the trace first
    (``trace.close_open``) — open spans have no duration yet.
    """
    folded = 0
    for span in trace.spans:
        if span.kind not in ("load", "prefetch"):
            continue
        duration = span.duration
        store.counter_add("fleet.loads", span.start, 1, kind=span.kind, **labels)
        store.observe("fleet.reconfig_ns", span.start, duration, **labels)
        store.counter_add("fleet.port_busy_ns", span.start, duration, **labels)
        folded += 1
    return folded


def record_scheduler_stats(registry: MetricsRegistry, stats, prefix: str = "scheduler") -> None:
    """Feed :class:`~repro.aaa.scheduler.SchedulerStats` (or its dict) in."""
    payload = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
    registry.record_counts(prefix, payload)


def record_manager_stats(registry: MetricsRegistry, stats, prefix: str = "reconfig") -> None:
    """Feed :class:`~repro.reconfig.manager.ManagerStats` counters in.

    ``to_dict`` is :func:`dataclasses.asdict`-backed, so new counters flow
    into the registry without this bridge having to enumerate them.
    """
    registry.record_counts(prefix, stats.to_dict())


def record_fleet_stats(registry: MetricsRegistry, report, prefix: str = "fleet") -> None:
    """Feed a :class:`~repro.runtime.fleet.FleetReport`'s aggregate totals in."""
    registry.record_counts(prefix, dict(report.totals))
    registry.record_counts(
        prefix,
        {
            "boards": report.n_boards,
            "total_requests": report.total_requests,
            "end_time_ns": report.end_time_ns,
        },
    )


def record_cache_stats(registry: MetricsRegistry, stats, prefix: str = "cache") -> None:
    """Feed :class:`~repro.flows.pipeline.CacheStats` counters in."""
    registry.record_counts(
        prefix,
        {
            "hits": stats.hits,
            "misses": stats.misses,
            "stores": stats.stores,
            "evictions": stats.evictions,
            "corruptions": stats.corruptions,
        },
    )


def record_config_service_stats(registry: MetricsRegistry, service, prefix: str = "configsvc") -> None:
    """Feed :class:`~repro.executive.interpreter.FixedLatencyConfigService` counters in."""
    registry.record_counts(
        prefix,
        {
            "swap_count": service.swap_count,
            "stall_ns": service.stall_ns,
            "hints_seen": service.hints_seen,
            "prefetch_starts": service.prefetch_starts,
        },
    )


def record_search_stats(registry: MetricsRegistry, result, prefix: str = "search") -> None:
    """Feed a :class:`~repro.search.anneal.SearchResult`'s counters in.

    The driver already bumps the ambient ``search.*`` counters as it runs;
    this records a *finished* result into an arbitrary registry (the traced
    CLI path uses it so the manifest carries the run's totals).
    """
    registry.record_counts(
        prefix,
        {
            "evaluations": result.evaluations,
            "accepted": result.accepted,
            "improved": result.improved,
            "best_total_ns": result.best_cost.total_ns,
            "best_makespan_ns": result.best_cost.makespan_ns,
            "violations": len(result.best_cost.violations),
        },
    )
