"""`repro top`-style text dashboard over a telemetry store.

Renders a :class:`~repro.obs.telemetry.TimeSeriesStore` (or a whole
:class:`~repro.obs.telemetry.Telemetry` hub) as plain text: a fleet panel
with per-policy hit rate and stall percentiles, a generic series table
with per-window sparklines, and the SLO breach log.  Output is a plain
``str`` — the CLI decides whether to clear the screen between frames
(``fleet --live`` on a tty) or just print once (``repro tail`` piping to a
file), so rendering works identically on a non-tty.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.obs.sketch import QuantileSketch
from repro.obs.telemetry import SloBreach, Telemetry, TimeSeriesStore

__all__ = [
    "sparkline",
    "render_dashboard",
    "render_hub",
    "render_fleet_panel",
]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[Optional[float]], ascii_only: bool = False) -> str:
    """Min-max scaled one-row chart; None cells (empty windows) render as
    spaces so time gaps stay visible instead of collapsing."""
    ramp = ".:-=+*#%" if ascii_only else _BLOCKS
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append(" ")
        elif span == 0:
            out.append(ramp[0])
        else:
            out.append(ramp[min(len(ramp) - 1, int((v - lo) / span * len(ramp)))])
    return "".join(out)


def _fmt_num(value: float) -> str:
    """Compact engineering format: 1234567 -> '1.23M'."""
    if value != value:  # NaN
        return "nan"
    neg = value < 0
    v = abs(float(value))
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if v >= cut:
            return f"{'-' if neg else ''}{v / cut:.2f}{suffix}"
    if v == int(v):
        return f"{'-' if neg else ''}{int(v)}"
    return f"{'-' if neg else ''}{v:.3g}"


def _fmt_ns(value: float) -> str:
    v = float(value)
    for cut, suffix in ((1e9, "s"), (1e6, "ms"), (1e3, "us")):
        if abs(v) >= cut:
            return f"{v / cut:.2f}{suffix}"
    return f"{v:.0f}ns"


def _fmt_value(name: str, value: float) -> str:
    return _fmt_ns(value) if name.endswith("_ns") else _fmt_num(value)


def _fmt_labels(label_set) -> str:
    return ",".join(f"{k}={v}" for k, v in label_set) or "-"


def _axis_desc(store: TimeSeriesStore) -> str:
    if store.clock in ("sim", "wall"):
        return f"{store.clock} clock, window {_fmt_ns(store.window)}"
    return f"{store.clock} axis, window {store.window}"


def _tail_windows(store: TimeSeriesStore, last: int) -> list[int]:
    """The dashboard's time axis: the last ``last`` windows holding data,
    padded to a contiguous range so sparklines show gaps."""
    indices = store.window_indices()
    if not indices:
        return []
    hi = indices[-1]
    lo = max(indices[0], hi - last + 1)
    return list(range(lo, hi + 1))


def render_fleet_panel(
    store: TimeSeriesStore, last: int = 12, ascii_only: bool = False
) -> str:
    """Per-policy hit-rate and stall-percentile table.

    Reads the fleet wiring's conventional series (``fleet.demands``,
    ``fleet.hits`` counters and the ``fleet.stall_ns`` sketch, labeled by
    policy): per-window hit rates feed the sparkline, while totals and the
    percentile columns aggregate across the shown windows (counter sums
    and sketch merges — both exact).
    """
    label_sets = store.label_sets("fleet.demands")
    if not label_sets:
        return ""
    axis = _tail_windows(store, last)
    lines = [
        f"fleet  ({_axis_desc(store)}, last {len(axis)} windows)",
        f"  {'labels':<24} {'demands':>8} {'hit%':>6} {'p50 stall':>10} "
        f"{'p99 stall':>10}  hit%/window",
    ]
    for label_set in label_sets:
        labels = dict(label_set)
        demands = dict(store.series("fleet.demands", **labels))
        hits = dict(store.series("fleet.hits", **labels))
        rates: list[Optional[float]] = []
        for w in axis:
            d = demands.get(w)
            rates.append(hits.get(w, 0) / d if d else None)
        total_d = sum(demands.get(w, 0) for w in axis)
        total_h = sum(hits.get(w, 0) for w in axis)
        merged = QuantileSketch(store.sketch_accuracy)
        for w in axis:
            sketch = store.value("fleet.stall_ns", w, **labels)
            if isinstance(sketch, QuantileSketch):
                merged.merge(sketch)
        hit_pct = f"{100.0 * total_h / total_d:.1f}" if total_d else "-"
        p50 = _fmt_ns(merged.quantile(0.5)) if merged.count else "-"
        p99 = _fmt_ns(merged.quantile(0.99)) if merged.count else "-"
        lines.append(
            f"  {_fmt_labels(label_set):<24} {_fmt_num(total_d):>8} {hit_pct:>6} "
            f"{p50:>10} {p99:>10}  {sparkline(rates, ascii_only)}"
        )
    return "\n".join(lines)


def _series_rows(
    store: TimeSeriesStore, axis: list[int], ascii_only: bool
) -> list[str]:
    rows = []
    for name in store.series_names():
        if name in ("fleet.demands", "fleet.hits", "fleet.stall_ns") and (
            store.label_sets("fleet.demands")
        ):
            continue  # already on the fleet panel
        kind = store.kind(name)
        for label_set in store.label_sets(name):
            labels = dict(label_set)
            per_window = dict(store.series(name, **labels))
            if kind == "quantile":
                track = [
                    s.quantile(0.99) if s is not None else None
                    for s in (per_window.get(w) for w in axis)
                ]
                latest = next(
                    (per_window[w] for w in reversed(axis) if w in per_window), None
                )
                value = (
                    f"p50 {_fmt_value(name, latest.quantile(0.5))} "
                    f"p99 {_fmt_value(name, latest.quantile(0.99))} "
                    f"n={_fmt_num(latest.count)}"
                    if latest is not None else "-"
                )
            else:
                track = [per_window.get(w) for w in axis]
                latest_v = next(
                    (per_window[w] for w in reversed(axis) if w in per_window), None
                )
                value = _fmt_value(name, latest_v) if latest_v is not None else "-"
            rows.append(
                f"  {kind[0]} {name:<26} {_fmt_labels(label_set):<24} "
                f"{value:<34} {sparkline(track, ascii_only)}"
            )
    return rows


def render_dashboard(
    store: TimeSeriesStore,
    last: int = 12,
    breaches: Iterable[SloBreach] = (),
    title: str = "telemetry",
    ascii_only: bool = False,
) -> str:
    """One full text frame for a store (header, fleet panel, series, SLOs)."""
    axis = _tail_windows(store, last)
    header = (
        f"== {title} == {_axis_desc(store)} | series {len(store)} | "
        f"windows {len(store.window_indices())}"
        + (f" | evicted {store.evicted_windows}" if store.evicted_windows else "")
    )
    parts = [header]
    if not axis:
        parts.append("  (no data)")
        return "\n".join(parts)
    fleet = render_fleet_panel(store, last, ascii_only)
    if fleet:
        parts.append(fleet)
    rows = _series_rows(store, axis, ascii_only)
    if rows:
        parts.append("series (latest window; sparkline = last windows)")
        parts.extend(rows)
    breaches = list(breaches)
    if breaches:
        parts.append(f"SLO breaches ({len(breaches)})")
        parts.extend(f"  ! {b.describe()}" for b in breaches[-10:])
    return "\n".join(parts)


def render_hub(
    hub: Telemetry,
    last: int = 12,
    breaches: Mapping[str, Iterable[SloBreach]] = None,
    ascii_only: bool = False,
) -> str:
    """Render every domain store in a hub, one panel per domain."""
    breaches = breaches or {}
    parts = []
    for domain in hub.domains():
        parts.append(
            render_dashboard(
                hub.store(domain),
                last=last,
                breaches=breaches.get(domain, ()),
                title=domain,
                ascii_only=ascii_only,
            )
        )
    return "\n\n".join(parts) if parts else "== telemetry == (no domains)"
