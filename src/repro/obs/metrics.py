"""Metrics registry: counters, gauges and fixed-boundary histograms.

The registry is the numeric half of the observability layer: span trees
answer *when*, the registry answers *how much* — cache traffic, scheduler
placement-evaluation work, reconfiguration prefetch accounting.  Snapshots
are deterministic: instruments are reported sorted by name and histograms
use **fixed bucket boundaries** chosen at construction, so two runs over the
same inputs serialize byte-identically (modulo the measured values
themselves) and diffs of run manifests stay readable.

Like the tracer, an ambient registry (:func:`get_metrics` /
:func:`set_metrics` / :func:`use_metrics`) lets library code record without
plumbing; the default registry is a real (cheap) instance, so recording is
always safe — a CLI trace session installs a fresh one per run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STAGE_SECONDS_BUCKETS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

#: Fixed boundaries (seconds) for stage/job wall-time histograms.  Chosen to
#: straddle the observed range from cache hits (~0.1 ms) to full modular
#: back-end runs (seconds); fixed so exported histograms are deterministic.
STAGE_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: increment must be >= 0")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-boundary histogram (cumulative-free, one count per bucket).

    ``boundaries`` are upper bounds of the finite buckets; one overflow
    bucket catches everything above the last boundary, so ``counts`` has
    ``len(boundaries) + 1`` entries.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "sum")

    def __init__(self, name: str, boundaries: Sequence[float] = STAGE_SECONDS_BUCKETS):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError(f"histogram {name!r}: boundaries must be non-empty and sorted")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: Union[int, float]) -> None:
        index = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named instruments with get-or-create accessors and stable snapshots."""

    def __init__(self) -> None:
        self._instruments: dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}, "
                f"not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, boundaries: Sequence[float] = STAGE_SECONDS_BUCKETS) -> Histogram:
        return self._get(name, Histogram, boundaries=boundaries)

    def record_counts(self, prefix: str, values: Mapping[str, Union[int, float]]) -> None:
        """Bulk-add a stats mapping (e.g. a ``to_dict()`` of counters).

        Numeric values land on ``<prefix>.<key>`` counters; non-numeric and
        negative entries are skipped (rates and derived ratios belong in the
        snapshot consumer, not the registry).
        """
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value < 0:
                continue
            self.counter(f"{prefix}.{key}").inc(value)

    def snapshot(self) -> dict:
        """All instruments, sorted by name — the manifest's ``metrics`` block."""
        return {name: self._instruments[name].to_dict() for name in sorted(self._instruments)}

    def merge_snapshot(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The sweep engine uses this to adopt worker-side metrics shipped over
        the result pipe: counters add, gauges take the incoming value, and
        histograms merge bucket-wise when the boundaries agree (mismatched
        boundaries raise — mixed-resolution merges would silently lie).
        """
        for name, payload in snapshot.items():
            kind = payload.get("type")
            if kind == "counter":
                self.counter(name).inc(payload.get("value", 0))
            elif kind == "gauge":
                self.gauge(name).set(payload.get("value", 0))
            elif kind == "histogram":
                boundaries = tuple(float(b) for b in payload.get("boundaries", ()))
                histogram = self.histogram(name, boundaries=boundaries)
                if histogram.boundaries != boundaries:
                    raise ValueError(
                        f"histogram {name!r}: cannot merge boundaries "
                        f"{boundaries} into {histogram.boundaries}"
                    )
                for i, count in enumerate(payload.get("counts", ())):
                    histogram.counts[i] += count
                histogram.total += payload.get("count", 0)
                histogram.sum += payload.get("sum", 0.0)
            else:
                raise ValueError(f"metric {name!r}: unknown snapshot type {kind!r}")

    def __len__(self) -> int:
        return len(self._instruments)


_current_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The ambient registry (a default shared instance unless one was set)."""
    return _current_metrics


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` installs a fresh one); returns the previous."""
    global _current_metrics
    previous = _current_metrics
    _current_metrics = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_metrics(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_metrics` (fresh registry by default); restores on exit."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
