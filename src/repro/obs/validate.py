"""Chrome trace-event schema validation (the CI trace gate).

:func:`validate_chrome_trace` checks the structural invariants a healthy
trace export must satisfy before anyone debugs from it:

- the payload is a trace-event container (``traceEvents`` list, or a bare
  event list — both forms load in Perfetto);
- every event carries a ``ph`` phase; ``X`` (complete) events carry
  numeric, non-negative ``ts``/``dur``; ``B``/``E`` duration events pair up
  per ``(pid, tid)`` lane with nothing left open;
- ``C`` (counter) events carry a numeric, non-negative ``ts`` and an
  ``args`` object whose every value is a finite number — a counter track
  with a string sample renders as a silent gap in Perfetto;
- span identity is coherent: every ``parent_id`` referenced by a span
  resolves to a ``span_id`` present in the file (a worker span whose parent
  was lost in transit fails here), and all spans belong to **one** trace.

Returns the list of problems (empty = valid) so the CLI can print them and
CI can fail the build on any.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = ["validate_chrome_trace", "validate_trace_file"]

_KNOWN_PHASES = set("BEXIiCbnePSTFsfMNODv(){}")


def validate_chrome_trace(payload: Any) -> list[str]:
    """Structural problems of a parsed Chrome trace-event payload."""
    errors: list[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"payload must be an object or event list, got {type(payload).__name__}"]
    if not events:
        errors.append("trace contains no events")

    open_stacks: dict[tuple, list[int]] = {}
    span_ids: set[str] = set()
    parent_refs: list[tuple[int, str]] = []
    trace_ids: set[str] = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event #{index}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            errors.append(f"event #{index}: missing 'ph' phase")
            continue
        if phase not in _KNOWN_PHASES:
            errors.append(f"event #{index}: unknown phase {phase!r}")
            continue
        lane = (event.get("pid"), event.get("tid"))
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(f"event #{index} ({event.get('name')!r}): non-numeric {field!r}")
                elif value < 0:
                    errors.append(f"event #{index} ({event.get('name')!r}): negative {field!r}")
        elif phase == "B":
            open_stacks.setdefault(lane, []).append(index)
        elif phase == "E":
            stack = open_stacks.get(lane)
            if not stack:
                errors.append(f"event #{index}: 'E' with no matching 'B' on lane {lane}")
            else:
                stack.pop()
        elif phase == "C":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool):
                errors.append(f"event #{index} ({event.get('name')!r}): non-numeric 'ts'")
            elif ts < 0:
                errors.append(f"event #{index} ({event.get('name')!r}): negative 'ts'")
            counter_args = event.get("args")
            if not isinstance(counter_args, dict) or not counter_args:
                errors.append(
                    f"event #{index} ({event.get('name')!r}): counter event needs a "
                    "non-empty 'args' object"
                )
            else:
                for key, value in counter_args.items():
                    if (
                        isinstance(value, bool)
                        or not isinstance(value, (int, float))
                        or value != value  # NaN
                        or value in (float("inf"), float("-inf"))
                    ):
                        errors.append(
                            f"event #{index} ({event.get('name')!r}): counter sample "
                            f"{key!r} is not a finite number"
                        )
        args = event.get("args")
        if phase == "X" and isinstance(args, dict) and "span_id" in args:
            span_id = args.get("span_id")
            if not isinstance(span_id, str) or not span_id:
                errors.append(f"event #{index}: empty span_id")
            else:
                span_ids.add(span_id)
            parent = args.get("parent_id")
            if parent is not None:
                if not isinstance(parent, str) or not parent:
                    errors.append(f"event #{index}: malformed parent_id {parent!r}")
                else:
                    parent_refs.append((index, parent))
            trace_id = args.get("trace_id")
            if isinstance(trace_id, str) and trace_id:
                trace_ids.add(trace_id)

    for lane, stack in open_stacks.items():
        for index in stack:
            errors.append(f"event #{index}: 'B' never closed on lane {lane}")
    for index, parent in parent_refs:
        if parent not in span_ids:
            errors.append(f"event #{index}: parent_id {parent!r} resolves to no span in the trace")
    if len(trace_ids) > 1:
        errors.append(f"events belong to {len(trace_ids)} traces: {sorted(trace_ids)}")
    return errors


def validate_trace_file(path: "str | Path") -> list[str]:
    """Load ``path`` and validate; unreadable/unparsable files are errors."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as err:
        return [f"cannot read {path}: {err}"]
    except json.JSONDecodeError as err:
        return [f"{path} is not valid JSON: {err}"]
    return validate_chrome_trace(payload)
