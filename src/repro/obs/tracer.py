"""Hierarchical span tracing.

One tracer serves every layer of the flow — pipeline stages, sweep jobs,
worker processes, the link engine and (bridged from virtual time) the
discrete-event runtime — so a single run produces a single tree of spans:

- :class:`SpanContext` is the propagatable identity of a span
  (``trace_id`` / ``span_id`` / ``parent_id``); it is a small frozen
  dataclass that pickles cleanly, so the sweep engine can ship it over a
  worker pipe and the worker's spans parent correctly across the process
  boundary.
- :class:`Span` is one finished interval with an attribute bag.  Wall-clock
  spans are timed with the *monotonic* ``perf_counter_ns`` clock and mapped
  onto the epoch through a per-tracer anchor, so durations never go
  backwards and spans from different processes still share one timeline.
  Spans bridged from the simulation kernel carry virtual nanoseconds and
  are marked ``clock="sim"``.
- :class:`Tracer` is the recording implementation; :class:`NoopTracer` is
  the **default** and is zero-cost: ``span()`` returns a shared inert
  handle, no ids are generated, no clocks are read.  Instrumentation sites
  guard attribute construction behind ``tracer.enabled``.

The ambient tracer (:func:`get_tracer` / :func:`set_tracer` /
:func:`use_tracer`) lets deep library code participate in a trace without
threading a tracer argument through every signature.  The same pattern
serves the metrics registry (:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

__all__ = [
    "SpanContext",
    "Span",
    "SpanHandle",
    "NoopSpanHandle",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "new_trace_id",
]

_TRACE_SEQ = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (epoch-seeded so runs rarely collide)."""
    return f"t{time.time_ns():x}-{next(_TRACE_SEQ)}"


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span (pickles cleanly)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child_of(self, span_id: str) -> "SpanContext":
        return SpanContext(trace_id=self.trace_id, span_id=span_id, parent_id=self.span_id)


@dataclass
class Span:
    """One finished activity interval."""

    name: str
    context: SpanContext
    start_ns: int  #: epoch ns for ``clock="wall"``, virtual ns for ``clock="sim"``
    duration_ns: int
    clock: str = "wall"  #: ``"wall"`` or ``"sim"``
    process: str = "main"  #: logical process (chrome-trace pid lane)
    track: str = "main"  #: logical thread/track within the process (tid lane)
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "clock": self.clock,
            "process": self.process,
            "track": self.track,
            "attributes": dict(self.attributes),
        }


class SpanHandle:
    """An open span: context manager or explicit ``start()``/``end()``."""

    __slots__ = ("tracer", "name", "context", "attributes", "_start_perf", "_done")

    def __init__(self, tracer: "Tracer", name: str, context: SpanContext,
                 attributes: Optional[Mapping[str, Any]]):
        self.tracer = tracer
        self.name = name
        self.context = context
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self._start_perf: Optional[int] = None
        self._done = False

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def start(self) -> "SpanHandle":
        if self._start_perf is None:
            self._start_perf = time.perf_counter_ns()
            self.tracer._stack.append(self)
        return self

    def end(self) -> Optional[Span]:
        if self._done or self._start_perf is None:
            return None
        self._done = True
        now = time.perf_counter_ns()
        stack = self.tracer._stack
        if self in stack:  # tolerate out-of-order ends of overlapping spans
            stack.remove(self)
        span = Span(
            name=self.name,
            context=self.context,
            start_ns=self.tracer.to_epoch_ns(self._start_perf),
            duration_ns=now - self._start_perf,
            clock="wall",
            process=self.tracer.process,
            track=self.tracer.track,
            attributes=self.attributes,
        )
        self.tracer.spans.append(span)
        return span

    def __enter__(self) -> "SpanHandle":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.end()


class NoopSpanHandle:
    """Shared inert handle returned by :class:`NoopTracer` — no state, no cost."""

    __slots__ = ()
    context = None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def start(self) -> "NoopSpanHandle":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "NoopSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_HANDLE = NoopSpanHandle()


class Tracer:
    """Recording tracer: collects finished :class:`Span` records in memory.

    ``span_id_prefix`` namespaces span ids so several processes contributing
    to one trace (the sweep workers) can generate ids without coordination.
    """

    enabled = True

    def __init__(
        self,
        trace_id: Optional[str] = None,
        span_id_prefix: str = "s",
        process: str = "main",
        track: str = "main",
        span_seq: Optional[Iterator[int]] = None,
    ):
        self.trace_id = trace_id or new_trace_id()
        self.span_id_prefix = span_id_prefix
        self.process = process
        self.track = track
        self.spans: list[Span] = []
        #: ``span_seq`` lets a caller share one id counter across several
        #: tracers with the same prefix — a long-lived pool worker serves
        #: many traced runs (each with its own tracer) and must never
        #: repeat a ``w<id>-N`` span id.
        self._seq = span_seq if span_seq is not None else itertools.count(1)
        self._stack: list[SpanHandle] = []
        #: Anchor mapping the monotonic clock onto the epoch: spans are
        #: *timed* monotonically and *placed* on the shared epoch timeline.
        self._anchor_epoch_ns = time.time_ns()
        self._anchor_perf_ns = time.perf_counter_ns()

    def to_epoch_ns(self, perf_ns: int) -> int:
        return self._anchor_epoch_ns + (perf_ns - self._anchor_perf_ns)

    def next_span_id(self) -> str:
        return f"{self.span_id_prefix}{next(self._seq)}"

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost open span, if any."""
        return self._stack[-1].context if self._stack else None

    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> SpanHandle:
        """A new handle; parented to ``parent`` or the innermost open span."""
        if parent is None:
            parent = self.current_context()
        context = SpanContext(
            trace_id=parent.trace_id if parent is not None else self.trace_id,
            span_id=self.next_span_id(),
            parent_id=parent.span_id if parent is not None else None,
        )
        return SpanHandle(self, name, context, attributes)

    def add_span(self, span: Span) -> None:
        """Adopt a finished span produced elsewhere (worker pipe, sim bridge)."""
        self.spans.append(span)

    def add_spans(self, spans) -> None:
        self.spans.extend(spans)


class NoopTracer:
    """The default tracer: records nothing, allocates nothing."""

    enabled = False
    trace_id = ""
    process = "main"
    track = "main"

    def span(self, name: str, parent: Optional[SpanContext] = None,
             attributes: Optional[Mapping[str, Any]] = None) -> NoopSpanHandle:
        return _NOOP_HANDLE

    def current_context(self) -> None:
        return None

    def add_span(self, span: Span) -> None:
        pass

    def add_spans(self, spans) -> None:
        pass


NOOP_TRACER = NoopTracer()
_current_tracer: "Tracer | NoopTracer" = NOOP_TRACER


def get_tracer() -> "Tracer | NoopTracer":
    """The ambient tracer (the shared no-op tracer unless one was set)."""
    return _current_tracer


def set_tracer(tracer: "Tracer | NoopTracer | None"):
    """Install ``tracer`` (``None`` restores the no-op); returns the previous."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer if tracer is not None else NOOP_TRACER
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | NoopTracer") -> Iterator["Tracer | NoopTracer"]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
