"""Streaming, dimensionally-labeled time-series telemetry.

The metrics registry (:mod:`repro.obs.metrics`) answers *how much happened
over the whole run*; this layer answers *how the run evolved* — hit rate
per 50 ms of simulated time, p99 stall latency per window, worker-pool
queue depth over the wall clock — at a memory cost bounded by the window
count, not the event count.

Three pieces:

- :class:`TimeSeriesStore` — fixed-width windows over an integer time axis
  (simulated ns, wall ns, or any monotone index such as search
  evaluations).  Series are ``(name, label set)`` keyed: counters add,
  gauges keep the last write per window, quantile series fold samples into
  a mergeable :class:`~repro.obs.sketch.QuantileSketch`.  A ring retention
  policy drops the oldest windows once ``retention`` is exceeded, so a
  million-request run holds a sliding frame of recent history instead of
  growing without bound.  Vectorized ``*_array`` recorders exist for the
  fast fleet engine's step-batch flushes: they validate and append array
  *references* (a write-behind buffer) and the windowed aggregation runs
  lazily at first read — the simulation's timed path pays list appends,
  the dashboard/export/SLO reader pays the numpy grouping.
- :class:`SloMonitor` — evaluates declarative :class:`SloRule` objects
  (floor / ceiling / band, optionally on a sketch quantile or on the ratio
  of two counter series) per closed window and emits typed
  :class:`SloBreach` events.
- :class:`Telemetry` — a named collection of stores (one per clock
  domain), installable as the ambient telemetry hub
  (:func:`get_telemetry` / :func:`use_telemetry`).  The default ambient is
  ``None``: telemetry is strictly opt-in and instrumentation sites guard
  with one ``is None`` check, so the disabled cost is a dict lookup.

Label cardinality is the operator's responsibility: series are cheap per
label *set*, so label by policy, region, pool or worker — never by request
or board id (a 1k-board fleet labeled per board multiplies every window by
1000).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "LabelSet",
    "TimeSeriesStore",
    "SloRule",
    "SloBreach",
    "SloMonitor",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]

#: Version stamped on every serialized telemetry row.
TELEMETRY_SCHEMA_VERSION = 1

#: Bias keeping sketch bucket indices non-negative inside the composite
#: (window, bucket) keys the write-behind sketch drain sorts on.
_BUCKET_BIAS = 1 << 20

#: Canonical label-set form: sorted ``(key, value)`` tuples (hashable).
LabelSet = tuple

_KINDS = ("counter", "gauge", "quantile")


def _label_set(labels: Mapping[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class _Series:
    """One (name, label set) series: kind plus per-window values."""

    kind: str
    #: window index -> int/float (counter, gauge) or QuantileSketch
    windows: dict = field(default_factory=dict)
    #: write-behind buffer of un-aggregated ``(t, values)`` array batches
    #: appended by the ``*_array`` recorders; drained on first read
    pending: list = field(default_factory=list)


class TimeSeriesStore:
    """Fixed-width windowed series over one integer time axis.

    ``window`` is the window width in axis units (ns for the sim/wall
    clocks, evaluations for the search axis).  ``retention`` bounds memory:
    once more than ``retention`` distinct windows hold data, the oldest are
    dropped (``evicted_windows`` counts them — a dashboard reading zero
    there knows it saw the whole run).
    """

    def __init__(
        self,
        window: int,
        retention: int = 512,
        clock: str = "sim",
        sketch_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ):
        if window < 1:
            raise ValueError(f"window width must be >= 1, got {window}")
        if retention < 2:
            raise ValueError(f"retention must be >= 2 windows, got {retention}")
        self.window = int(window)
        self.retention = int(retention)
        self.clock = clock
        self.sketch_accuracy = float(sketch_accuracy)
        self._series: dict[tuple[str, LabelSet], _Series] = {}
        #: windows dropped by the ring retention policy (0 = full history)
        self.evicted_windows = 0

    # -- recording ---------------------------------------------------------

    def _get_series(self, name: str, labels: Mapping[str, object], kind: str) -> _Series:
        key = (name, _label_set(labels))
        series = self._series.get(key)
        if series is None:
            series = _Series(kind=kind)
            self._series[key] = series
        elif series.kind != kind:
            raise TypeError(
                f"series {name!r}{dict(key[1])} already recorded as "
                f"{series.kind}, not {kind}"
            )
        return series

    def window_index(self, t: Union[int, float]) -> int:
        return int(t) // self.window

    def window_bounds(self, index: int) -> tuple[int, int]:
        """``[start, end)`` of window ``index`` in axis units."""
        return index * self.window, (index + 1) * self.window

    def counter_add(
        self, name: str, t: Union[int, float], value: Union[int, float] = 1, **labels
    ) -> None:
        if value < 0:
            raise ValueError(f"counter {name!r}: increment must be >= 0")
        series = self._get_series(name, labels, "counter")
        w = self.window_index(t)
        series.windows[w] = series.windows.get(w, 0) + value
        self._retain(series)

    def gauge_set(self, name: str, t: Union[int, float], value: Union[int, float], **labels) -> None:
        series = self._get_series(name, labels, "gauge")
        series.windows[self.window_index(t)] = value
        self._retain(series)

    def observe(self, name: str, t: Union[int, float], value: Union[int, float], **labels) -> None:
        series = self._get_series(name, labels, "quantile")
        w = self.window_index(t)
        sketch = series.windows.get(w)
        if sketch is None:
            sketch = series.windows[w] = QuantileSketch(self.sketch_accuracy)
        sketch.add(value)
        self._retain(series)

    def counter_add_array(
        self,
        name: str,
        t: np.ndarray,
        values: Optional[np.ndarray] = None,
        **labels,
    ) -> None:
        """Vectorized counter adds: event times ``t``, weights ``values``
        (default 1 each).

        Write-behind: the call validates, captures the arrays *by
        reference* (callers must not mutate them afterwards) and returns;
        the windowed aggregation happens lazily when the series is next
        read.  The simulation hot path — a fleet flush spanning hundreds
        of windows — pays a list append; the ≤5% overhead guard in
        ``bench_obs_overhead.py`` watches this path.
        """
        t = np.asarray(t)
        if values is not None:
            values = np.asarray(values)
            if values.shape != t.shape:
                raise ValueError(
                    f"counter {name!r}: t and values must match, "
                    f"got {t.shape} vs {values.shape}"
                )
            if values.size and np.any(values < 0):
                raise ValueError(f"counter {name!r}: increments must be >= 0")
        if t.size == 0:
            return
        self._get_series(name, labels, "counter").pending.append((t, values))

    def observe_array(self, name: str, t: np.ndarray, values: np.ndarray, **labels) -> None:
        """Vectorized sketch observations grouped by window.

        Write-behind like :meth:`counter_add_array`: validation is eager
        (so a bad batch fails at the call site), the bucketing pass runs
        at first read.
        """
        t = np.asarray(t)
        values = np.asarray(values).ravel()
        if values.shape != t.shape:
            raise ValueError(
                f"series {name!r}: t and values must match, "
                f"got {t.shape} vs {values.shape}"
            )
        if t.size == 0:
            return
        if np.any(values < 0) or not np.all(np.isfinite(values)):
            raise ValueError(f"series {name!r}: sketch values must be finite and >= 0")
        self._get_series(name, labels, "quantile").pending.append((t, values))

    def gauge_add_array(self, name: str, t: np.ndarray, values: np.ndarray, **labels) -> None:
        """Vectorized *additive* gauge ingestion: per-window sums of
        ``values`` are **added** to the window's gauge value.

        This is the array form for derived rate/occupancy series (port
        utilization = busy-ns contributions summed per window): successive
        batches over disjoint event sets accumulate correctly, unlike the
        last-write-wins scalar :meth:`gauge_set`.  Write-behind like the
        other ``*_array`` recorders.
        """
        t = np.asarray(t)
        values = np.asarray(values).ravel()
        if values.shape != t.shape:
            raise ValueError(
                f"gauge {name!r}: t and values must match, "
                f"got {t.shape} vs {values.shape}"
            )
        if t.size == 0:
            return
        if not np.all(np.isfinite(values)):
            raise ValueError(f"gauge {name!r}: values must be finite")
        self._get_series(name, labels, "gauge").pending.append((t, values))

    def defer_array(self, name: str, kind: str, batch, **labels) -> None:
        """Append a lazy ``(t, values)`` batch producer (write-behind).

        ``batch`` is a zero-argument callable returning the arrays a
        ``*_array`` recorder would have been given (``values`` may be None
        for an unweighted counter batch).  It runs once, at the series'
        next read — instrumentation that must not even pay concatenation
        inside a timed region (the fast fleet engine's flush) hands over
        closures capturing raw per-step arrays instead.  Validation moves
        to materialization, so a bad producer fails at the first read.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown series kind {kind!r}")
        self._get_series(name, labels, kind).pending.append(batch)

    # -- write-behind drain ------------------------------------------------

    def _window_slots(self, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch times → ``(slot, window_of_slot)`` grouping.

        A flush batch spans a bounded stretch of its clock, so windows
        occupy a small dense range: ``np.bincount`` over ``window - min``
        groups the batch in O(n) with no sort.  Degenerate sparse batches
        (a huge time span with few events) fall back to ``np.unique`` —
        never a giant allocation.
        """
        windows = t.astype(np.int64) // self.window
        wmin = int(windows.min())
        n_slots = int(windows.max()) - wmin + 1
        if n_slots > 4 * windows.size + 1024:
            uniq, slots = np.unique(windows, return_inverse=True)
            return slots, uniq
        return windows - wmin, np.arange(wmin, wmin + n_slots)

    def _drain(self, series: _Series) -> None:
        """Aggregate a series' pending array batches into its windows."""
        if not series.pending:
            return
        pending, series.pending = series.pending, []
        batches = []
        for entry in pending:
            if callable(entry):
                t, values = entry()
                t = np.asarray(t)
                if values is not None:
                    values = np.asarray(values).ravel()
                if t.size == 0:
                    continue
                self._check_batch(series.kind, t, values)
                batches.append((t, values))
            else:
                batches.append(entry)
        if not batches:
            return
        if series.kind == "counter":
            # unweighted and weighted appends may interleave; group each
            unweighted = [t for t, v in batches if v is None]
            weighted = [(t, v) for t, v in batches if v is not None]
            if unweighted:
                self._drain_counts(series, np.concatenate(unweighted))
            if weighted:
                self._drain_sums(
                    series,
                    np.concatenate([t for t, _ in weighted]),
                    np.concatenate([v for _, v in weighted]),
                )
        elif series.kind == "gauge":
            self._drain_sums(
                series,
                np.concatenate([t for t, _ in batches]),
                np.concatenate([v for _, v in batches]),
            )
        else:
            self._drain_sketches(
                series,
                np.concatenate([t for t, _ in batches]),
                np.concatenate([v for _, v in batches]),
            )
        self._retain(series)

    def _check_batch(self, kind: str, t: np.ndarray, values) -> None:
        """The eager ``*_array`` validation, applied to a deferred batch."""
        if values is None:
            if kind != "counter":
                raise ValueError(f"deferred {kind} batch must carry values")
            return
        if values.shape != t.shape:
            raise ValueError(
                f"deferred {kind} batch: t and values must match, "
                f"got {t.shape} vs {values.shape}"
            )
        if kind == "counter":
            if np.any(values < 0):
                raise ValueError("deferred counter batch: increments must be >= 0")
        elif kind == "quantile":
            if np.any(values < 0) or not np.all(np.isfinite(values)):
                raise ValueError(
                    "deferred quantile batch: values must be finite and >= 0"
                )
        elif not np.all(np.isfinite(values)):
            raise ValueError("deferred gauge batch: values must be finite")

    def _drain_all(self) -> None:
        for series in self._series.values():
            self._drain(series)

    def _drain_counts(self, series: _Series, t: np.ndarray) -> None:
        slots, win_of_slot = self._window_slots(t)
        counts = np.bincount(slots, minlength=len(win_of_slot))
        nz = np.nonzero(counts)[0]
        windows = series.windows
        for w, count in zip(win_of_slot[nz].tolist(), counts[nz].tolist()):
            windows[w] = windows.get(w, 0) + count

    def _drain_sums(self, series: _Series, t: np.ndarray, values: np.ndarray) -> None:
        slots, win_of_slot = self._window_slots(t)
        values = values.astype(np.float64, copy=False)
        sums = np.bincount(slots, weights=values, minlength=len(win_of_slot))
        occupied = np.bincount(slots, minlength=len(win_of_slot))
        nz = np.nonzero(occupied)[0]
        windows = series.windows
        for w, total in zip(win_of_slot[nz].tolist(), sums[nz].tolist()):
            increment = int(total) if total.is_integer() else total
            windows[w] = windows.get(w, 0) + increment

    def _drain_sketches(self, series: _Series, t: np.ndarray, values: np.ndarray) -> None:
        """One bucketing pass over the whole batch plus one composite
        ``(window, bucket)`` ``np.unique`` replace a per-window
        :meth:`QuantileSketch.add_array` loop."""
        values = values.astype(np.float64, copy=False)
        windows = t.astype(np.int64) // self.window
        uniq, pos = np.unique(windows, return_inverse=True)
        n = len(uniq)
        counts = np.bincount(pos, minlength=n)
        sums = np.bincount(pos, weights=values, minlength=n)
        mins = np.full(n, np.inf)
        maxs = np.full(n, -np.inf)
        np.minimum.at(mins, pos, values)
        np.maximum.at(maxs, pos, values)
        probe = QuantileSketch(self.sketch_accuracy)
        small = values < probe.min_value
        zeros = np.bincount(pos[small], minlength=n)
        sketches: list[QuantileSketch] = []
        for i in range(n):
            w = int(uniq[i])
            sketch = series.windows.get(w)
            if sketch is None:
                sketch = series.windows[w] = QuantileSketch(self.sketch_accuracy)
            sketch.count += int(counts[i])
            sketch.sum += float(sums[i])
            sketch.zero_count += int(zeros[i])
            sketch._min = min(sketch._min, float(mins[i]))
            sketch._max = max(sketch._max, float(maxs[i]))
            sketches.append(sketch)
        large_values = values[~small]
        if large_values.size:
            large_pos = pos[~small].astype(np.int64)
            bucket = np.ceil(np.log(large_values) / probe._log_gamma).astype(np.int64)
            # Composite int64 key: window slot in the high bits, biased
            # bucket index in the low 32 (|bucket| stays in the thousands
            # for any ns-scale dynamic range, so the bias cannot collide).
            keys = (large_pos << 32) | (bucket + _BUCKET_BIAS)
            unique_keys, key_counts = np.unique(keys, return_counts=True)
            slots = (unique_keys >> 32).tolist()
            bucket_ids = ((unique_keys & 0xFFFFFFFF) - _BUCKET_BIAS).tolist()
            for slot, index, count in zip(slots, bucket_ids, key_counts.tolist()):
                buckets = sketches[slot]._buckets
                buckets[index] = buckets.get(index, 0) + count

    def _retain(self, series: _Series) -> None:
        """Ring retention: drop oldest windows beyond the budget."""
        excess = len(series.windows) - self.retention
        if excess > 0:
            for w in sorted(series.windows)[:excess]:
                del series.windows[w]
            self.evicted_windows += excess

    # -- queries -----------------------------------------------------------

    def series_names(self) -> list[str]:
        return sorted({name for name, _ in self._series})

    def label_sets(self, name: str) -> list[LabelSet]:
        return sorted(ls for n, ls in self._series if n == name)

    def kind(self, name: str) -> Optional[str]:
        for (n, _), series in self._series.items():
            if n == name:
                return series.kind
        return None

    def window_indices(self) -> list[int]:
        """All windows holding data, sorted (the dashboard's time axis)."""
        self._drain_all()
        out: set[int] = set()
        for series in self._series.values():
            out.update(series.windows)
        return sorted(out)

    def value(self, name: str, window: int, **labels):
        """Raw window value (number or sketch), or None when absent."""
        series = self._series.get((name, _label_set(labels)))
        if series is None:
            return None
        self._drain(series)
        return series.windows.get(window)

    def quantile(self, name: str, window: int, q: float, **labels) -> Optional[float]:
        sketch = self.value(name, window, **labels)
        if sketch is None:
            return None
        if not isinstance(sketch, QuantileSketch):
            raise TypeError(f"series {name!r} is not a quantile series")
        return sketch.quantile(q)

    def series(self, name: str, **labels) -> list[tuple[int, object]]:
        """``(window, value)`` pairs for one series, window-sorted."""
        stored = self._series.get((name, _label_set(labels)))
        if stored is None:
            return []
        self._drain(stored)
        return sorted(stored.windows.items())

    def total(self, name: str, **labels) -> Union[int, float]:
        """Sum of a counter series across retained windows."""
        stored = self._series.get((name, _label_set(labels)))
        if stored is None:
            return 0
        if stored.kind != "counter":
            raise TypeError(f"series {name!r} is a {stored.kind}, not a counter")
        self._drain(stored)
        return sum(stored.windows.values())

    def __len__(self) -> int:
        return len(self._series)

    # -- merge / serialization --------------------------------------------

    def merge(self, other: "TimeSeriesStore") -> None:
        """Fold another store in (cross-process/cross-shard aggregation).

        Counters add, gauges take the incoming value, sketches merge
        exactly.  Window widths must agree — merging mixed resolutions
        would silently mislabel time.
        """
        if other.window != self.window:
            raise ValueError(
                f"cannot merge window={other.window} into window={self.window}"
            )
        self._drain_all()
        other._drain_all()
        for (name, label_set), theirs in sorted(other._series.items()):
            labels = dict(label_set)
            mine = self._get_series(name, labels, theirs.kind)
            for w, value in sorted(theirs.windows.items()):
                if theirs.kind == "counter":
                    mine.windows[w] = mine.windows.get(w, 0) + value
                elif theirs.kind == "gauge":
                    mine.windows[w] = value
                else:
                    sketch = mine.windows.get(w)
                    if sketch is None:
                        sketch = mine.windows[w] = QuantileSketch(self.sketch_accuracy)
                    sketch.merge(value)
            self._retain(mine)

    def to_rows(self) -> list[dict]:
        """One JSON-safe row per (series, window), deterministically ordered.

        The first row is a meta header carrying the axis parameters, so a
        reader (``repro tail``) can rebuild an equivalent store without
        out-of-band knowledge.  Quantile rows carry the *full* sketch (it
        is small — bounded by the bucket count) plus a display summary.
        """
        self._drain_all()
        rows: list[dict] = [
            {
                "schema": TELEMETRY_SCHEMA_VERSION,
                "meta": True,
                "window": self.window,
                "clock": self.clock,
                "retention": self.retention,
                "evicted_windows": self.evicted_windows,
            }
        ]
        for (name, label_set), series in sorted(self._series.items()):
            for w, value in sorted(series.windows.items()):
                t_start, t_end = self.window_bounds(w)
                row = {
                    "schema": TELEMETRY_SCHEMA_VERSION,
                    "name": name,
                    "labels": dict(label_set),
                    "type": series.kind,
                    "window": w,
                    "t_start": t_start,
                    "t_end": t_end,
                }
                if series.kind == "quantile":
                    row["sketch"] = value.to_dict()
                    row["summary"] = value.summary()
                else:
                    row["value"] = value
                rows.append(row)
        return rows

    def write_jsonl(self, target: Union[str, Path, IO[str]]) -> int:
        """Write :meth:`to_rows` as JSON lines; returns the row count."""
        rows = self.to_rows()
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as stream:
                for row in rows:
                    stream.write(json.dumps(row, sort_keys=True) + "\n")
        else:
            for row in rows:
                target.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping]) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`to_rows` output (tail/merge tooling).

        Rows with a newer schema than this code understands raise — a
        silent partial read would render a misleading dashboard.
        """
        store: Optional[TimeSeriesStore] = None
        pending: list[Mapping] = []

        def ensure_store(row: Mapping) -> "TimeSeriesStore":
            return cls(
                window=int(row.get("window", 1)),
                retention=int(row.get("retention", 512)),
                clock=str(row.get("clock", "sim")),
            )

        for row in rows:
            schema = row.get("schema", 0)
            if schema > TELEMETRY_SCHEMA_VERSION:
                raise ValueError(
                    f"telemetry row schema {schema} is newer than supported "
                    f"{TELEMETRY_SCHEMA_VERSION}"
                )
            if row.get("meta"):
                store = ensure_store(row)
                store.evicted_windows = int(row.get("evicted_windows", 0))
                continue
            if store is None:
                pending.append(row)
                continue
            store_row(store, row)
        if store is None:
            store = cls(window=1)
        for row in pending:
            store_row(store, row)
        return store

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "TimeSeriesStore":
        rows = []
        with Path(path).open("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
        return cls.from_rows(rows)


def store_row(store: TimeSeriesStore, row: Mapping) -> None:
    """Insert one serialized row into ``store`` (exact for all kinds)."""
    kind = row.get("type")
    if kind not in _KINDS:
        raise ValueError(f"unknown telemetry row type {kind!r}")
    name = str(row["name"])
    labels = {str(k): str(v) for k, v in dict(row.get("labels", {})).items()}
    w = int(row["window"])
    series = store._get_series(name, labels, kind)
    if kind == "counter":
        series.windows[w] = series.windows.get(w, 0) + row.get("value", 0)
    elif kind == "gauge":
        series.windows[w] = row.get("value", 0)
    else:
        sketch = QuantileSketch.from_dict(row.get("sketch", {}))
        existing = series.windows.get(w)
        if existing is None:
            series.windows[w] = sketch
        else:
            existing.merge(sketch)
    store._retain(series)


# ---------------------------------------------------------------------------
# SLO monitoring
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level objective, evaluated per window.

    ``kind`` is ``"floor"`` (breach when value < ``threshold``),
    ``"ceiling"`` (breach when value > ``threshold``) or ``"band"``
    (breach outside ``[low, high]``).  The evaluated value is, per window
    and per label set of ``series`` matching the ``labels`` filter:

    - a counter/gauge window value directly;
    - with ``quantile`` set, that quantile of a sketch series (a p99
      reconfiguration-latency ceiling);
    - with ``denominator`` set, the ratio ``series / denominator`` of two
      counter series sharing the label set (a hit-rate floor) — windows
      whose denominator is below ``min_count`` are skipped, so a
      two-request window cannot page anyone about a 50% hit rate.
    """

    name: str
    series: str
    kind: str
    threshold: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    quantile: Optional[float] = None
    denominator: Optional[str] = None
    labels: Mapping[str, str] = field(default_factory=dict)
    min_count: int = 1

    def __post_init__(self):
        if self.kind not in ("floor", "ceiling", "band"):
            raise ValueError(f"rule {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "band":
            if self.low is None or self.high is None:
                raise ValueError(f"band rule {self.name!r} needs low and high")
            if self.low > self.high:
                raise ValueError(f"band rule {self.name!r}: low > high")
        elif self.threshold is None:
            raise ValueError(f"{self.kind} rule {self.name!r} needs a threshold")
        if self.quantile is not None and not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"rule {self.name!r}: quantile must be in [0, 1]")

    def bounds(self) -> tuple[Optional[float], Optional[float]]:
        if self.kind == "floor":
            return self.threshold, None
        if self.kind == "ceiling":
            return None, self.threshold
        return self.low, self.high

    def violated_by(self, value: float) -> bool:
        low, high = self.bounds()
        if low is not None and value < low:
            return True
        if high is not None and value > high:
            return True
        return False


@dataclass(frozen=True)
class SloBreach:
    """A typed breach event: one rule violated in one window."""

    rule: str
    kind: str
    series: str
    window: int
    t_start: int
    t_end: int
    labels: LabelSet
    observed: float
    low: Optional[float]
    high: Optional[float]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "series": self.series,
            "window": self.window,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "labels": dict(self.labels),
            "observed": self.observed,
            "low": self.low,
            "high": self.high,
        }

    def describe(self) -> str:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        bound = (
            f">= {self.low:g}" if self.kind == "floor"
            else f"<= {self.high:g}" if self.kind == "ceiling"
            else f"in [{self.low:g}, {self.high:g}]"
        )
        return (
            f"SLO {self.rule} [{labels}] window {self.window} "
            f"[{self.t_start}..{self.t_end}): observed {self.observed:g}, "
            f"required {bound}"
        )


class SloMonitor:
    """Evaluates :class:`SloRule` objects against a store's closed windows.

    Each ``(rule, label set, window)`` combination is judged at most once
    — re-running :meth:`evaluate` after more data arrives only reports
    windows not yet seen, so a polling dashboard gets a stream of *new*
    breach events, not repeats.
    """

    def __init__(self, store: TimeSeriesStore, rules: Sequence[SloRule] = ()):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self.store = store
        self.rules = list(rules)
        self.breaches: list[SloBreach] = []
        self._judged: set[tuple[str, LabelSet, int]] = set()
        #: evaluations per rule name (windows judged, breached or not)
        self.windows_judged: dict[str, int] = {r.name: 0 for r in self.rules}

    def add_rule(self, rule: SloRule) -> None:
        if any(r.name == rule.name for r in self.rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        self.windows_judged[rule.name] = 0

    def _rule_value(
        self, rule: SloRule, label_set: LabelSet, window: int
    ) -> Optional[float]:
        labels = dict(label_set)
        value = self.store.value(rule.series, window, **labels)
        if value is None:
            return None
        if isinstance(value, QuantileSketch):
            if value.count < rule.min_count:
                return None
            return value.quantile(rule.quantile if rule.quantile is not None else 0.5)
        if rule.denominator is not None:
            denom = self.store.value(rule.denominator, window, **labels)
            if denom is None or denom < rule.min_count:
                return None
            return float(value) / float(denom)
        return float(value)

    def evaluate(self, up_to: Optional[int] = None) -> list[SloBreach]:
        """Judge every unseen (rule, label set, window); returns new breaches.

        ``up_to`` (exclusive window index) restricts evaluation to closed
        windows — a live run passes the window currently being filled so
        half-full windows are not judged against full-window SLOs.
        """
        fresh: list[SloBreach] = []
        for rule in self.rules:
            want = dict(rule.labels)
            for label_set in self.store.label_sets(rule.series):
                have = dict(label_set)
                if any(have.get(k) != str(v) for k, v in want.items()):
                    continue
                stored = self.store._series.get((rule.series, label_set))
                self.store._drain(stored)
                for window in sorted(stored.windows):
                    if up_to is not None and window >= up_to:
                        continue
                    key = (rule.name, label_set, window)
                    if key in self._judged:
                        continue
                    value = self._rule_value(rule, label_set, window)
                    if value is None:
                        continue
                    self._judged.add(key)
                    self.windows_judged[rule.name] += 1
                    if rule.violated_by(value):
                        t_start, t_end = self.store.window_bounds(window)
                        low, high = rule.bounds()
                        fresh.append(
                            SloBreach(
                                rule=rule.name,
                                kind=rule.kind,
                                series=rule.series,
                                window=window,
                                t_start=t_start,
                                t_end=t_end,
                                labels=label_set,
                                observed=value,
                                low=low,
                                high=high,
                            )
                        )
        self.breaches.extend(fresh)
        return fresh


# ---------------------------------------------------------------------------
# the ambient telemetry hub
# ---------------------------------------------------------------------------

#: Default window widths per clock domain (axis units).
DEFAULT_WINDOWS = {
    "sim": 50_000_000,      # 50 ms of simulated time
    "wall": 250_000_000,    # 250 ms of wall clock
    "search": 50,           # 50 evaluations
}


class Telemetry:
    """Named :class:`TimeSeriesStore` collection, one per clock domain.

    Different subsystems tick on unrelated axes — the fleet on simulated
    nanoseconds, the worker pool on the wall clock, the annealer on its
    evaluation counter — so the hub keys stores by domain name and creates
    them on first use with :data:`DEFAULT_WINDOWS` widths (overridable via
    ``windows``).
    """

    def __init__(self, windows: Optional[Mapping[str, int]] = None, retention: int = 512):
        self.windows = {**DEFAULT_WINDOWS, **(windows or {})}
        self.retention = retention
        self._stores: dict[str, TimeSeriesStore] = {}

    def store(self, domain: str = "wall", window: Optional[int] = None) -> TimeSeriesStore:
        """Get or create the domain's store (``window`` overrides on create)."""
        existing = self._stores.get(domain)
        if existing is not None:
            return existing
        width = window if window is not None else self.windows.get(domain, DEFAULT_WINDOWS["wall"])
        clock = domain if domain in ("sim", "wall") else "index"
        created = TimeSeriesStore(width, retention=self.retention, clock=clock)
        self._stores[domain] = created
        return created

    def domains(self) -> list[str]:
        return sorted(self._stores)

    def to_rows(self) -> list[dict]:
        """Every domain's rows, each tagged with its domain."""
        rows: list[dict] = []
        for domain in self.domains():
            for row in self._stores[domain].to_rows():
                row["domain"] = domain
                rows.append(row)
        return rows


_current_telemetry: Optional[Telemetry] = None


def get_telemetry() -> Optional[Telemetry]:
    """The ambient hub, or None (the default: telemetry disabled)."""
    return _current_telemetry


def set_telemetry(hub: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``hub`` as ambient (None disables); returns the previous."""
    global _current_telemetry
    previous = _current_telemetry
    _current_telemetry = hub
    return previous


@contextmanager
def use_telemetry(hub: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Scoped :func:`set_telemetry` (fresh hub by default); restores on exit."""
    hub = hub if hub is not None else Telemetry()
    previous = set_telemetry(hub)
    try:
        yield hub
    finally:
        set_telemetry(previous)
