"""Trace exporters: Chrome trace-event JSON, Gantt views, run manifests.

Three consumers of one span list:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format (``chrome://tracing`` and https://ui.perfetto.dev
  load it directly).  Every span becomes one complete ``"X"`` event; the
  span identity (``trace_id``/``span_id``/``parent_id``) rides in ``args``
  so the parent chain survives the export and the schema validator
  (:mod:`repro.obs.validate`) can check it.  Wall-clock spans and
  virtual-time (``clock="sim"``) spans are kept on separate process lanes:
  their clocks are unrelated, and Perfetto renders named lanes side by side.
  Numeric instruments ride along as ``"C"`` counter-track events:
  :func:`counter_events_from_snapshot` stamps a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot (counters and gauges)
  at one instant, and :func:`counter_events_from_store` unrolls a windowed
  :class:`~repro.obs.telemetry.TimeSeriesStore` into one counter sample per
  window so hit rates and p99 latencies render as graphs under the span
  lanes.  ``chrome_trace(..., counters=..., telemetry=...)`` folds both in.
- :func:`render_region_gantt` / :func:`render_region_gantt_svg` — the
  paper's Fig. 4 view: module residency per dynamic region over virtual
  time, with reconfiguration/prefetch intervals overlaid.
- :func:`build_manifest` / :func:`write_manifest` — the run manifest
  (argv, git revision, seed, metric snapshot) that makes a trace file
  self-describing.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "counter_events_from_snapshot",
    "counter_events_from_store",
    "region_timeline",
    "render_region_gantt",
    "render_region_gantt_svg",
    "build_manifest",
    "write_manifest",
    "manifest_path_for",
]


# -- chrome trace-event JSON -------------------------------------------------------


def _lane_maps(spans: Sequence[Span]) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Deterministic pid/tid assignment: sorted labels, ids from 1."""
    processes = sorted({_process_label(s) for s in spans})
    pids = {label: i + 1 for i, label in enumerate(processes)}
    tracks = sorted({(_process_label(s), s.track) for s in spans})
    tids: dict[tuple[str, str], int] = {}
    per_process: dict[str, int] = {}
    for process, track in tracks:
        per_process[process] = per_process.get(process, 0) + 1
        tids[(process, track)] = per_process[process]
    return pids, tids


def _process_label(span: Span) -> str:
    """Sim-domain spans get their own lane: the clocks are unrelated."""
    return span.process if span.clock == "wall" else f"{span.process} [sim time]"


def _metrics_snapshot(registry_or_snapshot: Any) -> Mapping[str, Mapping]:
    if hasattr(registry_or_snapshot, "snapshot"):
        return registry_or_snapshot.snapshot()
    return dict(registry_or_snapshot)


def counter_events_from_snapshot(
    registry_or_snapshot: Any, ts_us: float = 0.0, pid: int = 0
) -> list[dict]:
    """One ``"C"`` counter event per counter/gauge instrument, at one instant.

    A registry snapshot is a point-in-time total, so each instrument gets a
    single sample stamped at ``ts_us`` (callers usually pass the trace's end
    time).  Histograms are skipped — a bucket vector is not a counter track.
    """
    snapshot = _metrics_snapshot(registry_or_snapshot)
    events: list[dict] = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        if payload.get("type") not in ("counter", "gauge"):
            continue
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": ts_us,
                "pid": pid,
                "tid": 0,
                "args": {"value": payload.get("value", 0)},
            }
        )
    return events


def counter_events_from_store(
    store: Any, pid: int = 0, quantiles: Sequence[float] = (0.5, 0.99)
) -> list[dict]:
    """Windowed telemetry series as ``"C"`` counter tracks, one sample per window.

    Counter and gauge series emit their per-window value at the window start
    (sim-time nanoseconds → microseconds, matching the sim span lane).
    Quantile series fan out into ``<name>/count`` plus one ``<name>/p<q>``
    track per requested quantile, so the p99 reconfiguration-latency SLO
    input is visible as a graph.  Label sets become distinct tracks via a
    ``{k=v,...}`` suffix.
    """
    events: list[dict] = []
    for name in store.series_names():
        kind = store.kind(name)
        for label_set in store.label_sets(name):
            labels = dict(label_set)
            suffix = "{" + ",".join(f"{k}={v}" for k, v in label_set) + "}" if label_set else ""
            for window, value in store.series(name, **labels):
                ts_us = store.window_bounds(window)[0] / 1e3
                if kind in ("counter", "gauge"):
                    events.append(
                        {
                            "name": f"{name}{suffix}",
                            "ph": "C",
                            "ts": ts_us,
                            "pid": pid,
                            "tid": 0,
                            "args": {"value": value},
                        }
                    )
                else:  # quantile sketch
                    events.append(
                        {
                            "name": f"{name}/count{suffix}",
                            "ph": "C",
                            "ts": ts_us,
                            "pid": pid,
                            "tid": 0,
                            "args": {"value": value.count},
                        }
                    )
                    for q in quantiles:
                        label = f"p{q * 100:g}"
                        events.append(
                            {
                                "name": f"{name}/{label}{suffix}",
                                "ph": "C",
                                "ts": ts_us,
                                "pid": pid,
                                "tid": 0,
                                "args": {"value": value.quantile(q)},
                            }
                        )
    events.sort(key=lambda e: (e["name"], e["ts"]))
    return events


def chrome_trace(
    spans: Sequence[Span],
    metadata: Optional[Mapping[str, Any]] = None,
    counters: Optional[Any] = None,
    telemetry: Optional[Any] = None,
) -> dict:
    """The spans as a Chrome trace-event JSON object (Perfetto-loadable).

    ``counters`` (a :class:`~repro.obs.metrics.MetricsRegistry` or its
    snapshot) adds a ``metrics`` process lane of point-in-time counter
    tracks stamped at the last wall-span end; ``telemetry`` (a sim-clock
    :class:`~repro.obs.telemetry.TimeSeriesStore`) adds a windowed
    ``telemetry [sim time]`` counter lane next to the sim span lanes.
    """
    pids, tids = _lane_maps(spans)
    wall_starts = [s.start_ns for s in spans if s.clock == "wall"]
    wall_origin = min(wall_starts) if wall_starts else 0
    counter_lanes: list[tuple[str, Any]] = []
    if counters is not None:
        counter_lanes.append(("metrics", counters))
    if telemetry is not None:
        counter_lanes.append(("telemetry [sim time]", telemetry))
    next_pid = len(pids)
    for label, _source in counter_lanes:
        next_pid += 1
        pids[label] = next_pid
    events: list[dict] = []
    for label, pid in pids.items():
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "args": {"name": label}}
        )
    for (process, track), tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pids[process],
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in spans:
        label = _process_label(span)
        origin = wall_origin if span.clock == "wall" else 0
        args: dict[str, Any] = {
            "trace_id": span.context.trace_id,
            "span_id": span.context.span_id,
            "parent_id": span.context.parent_id,
        }
        args.update(span.attributes)
        events.append(
            {
                "name": span.name,
                "cat": span.clock,
                "ph": "X",
                "ts": (span.start_ns - origin) / 1e3,  # microseconds
                "dur": span.duration_ns / 1e3,
                "pid": pids[label],
                "tid": tids[(label, span.track)],
                "args": args,
            }
        )
    if counters is not None:
        wall_ends = [s.end_ns for s in spans if s.clock == "wall"]
        ts_us = (max(wall_ends) - wall_origin) / 1e3 if wall_ends else 0.0
        events.extend(counter_events_from_snapshot(counters, ts_us=ts_us, pid=pids["metrics"]))
    if telemetry is not None:
        events.extend(counter_events_from_store(telemetry, pid=pids["telemetry [sim time]"]))
    payload: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        payload["metadata"] = dict(metadata)
    return payload


def write_chrome_trace(
    path: "str | Path",
    spans: Sequence[Span],
    metadata: Optional[Mapping[str, Any]] = None,
    counters: Optional[Any] = None,
    telemetry: Optional[Any] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_trace(spans, metadata, counters=counters, telemetry=telemetry)
    path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    return path


# -- the Fig. 4 residency Gantt ----------------------------------------------------


def region_timeline(spans: Sequence[Span]) -> dict[str, dict[str, list]]:
    """Per-region residency and load intervals from bridged sim spans.

    Returns ``{region: {"resident": [(module, start, end)], "loads":
    [(module, start, end, kind)]}}`` where ``kind`` is ``load`` (a demand
    load; the fixed-latency executive service calls it ``reconfig``) or
    ``prefetch``.  Only ``clock="sim"`` spans carrying a ``region``
    attribute participate.
    """
    out: dict[str, dict[str, list]] = {}
    for span in spans:
        if span.clock != "sim":
            continue
        region = span.attributes.get("region")
        kind = span.attributes.get("kind")
        if not region or kind not in ("resident", "load", "reconfig", "prefetch"):
            continue
        entry = out.setdefault(str(region), {"resident": [], "loads": []})
        module = str(span.attributes.get("module", span.attributes.get("detail", "?")))
        if kind == "resident":
            entry["resident"].append((module, span.start_ns, span.end_ns))
        else:
            entry["loads"].append((module, span.start_ns, span.end_ns, kind))
    for entry in out.values():
        entry["resident"].sort(key=lambda item: item[1])
        entry["loads"].sort(key=lambda item: item[1])
    return out


def _t_end(timeline: Mapping[str, Mapping[str, list]]) -> int:
    ends = [iv[2] for entry in timeline.values() for iv in entry["resident"]]
    ends += [iv[2] for entry in timeline.values() for iv in entry["loads"]]
    return max(ends, default=1) or 1


def _module_glyphs(timeline: Mapping[str, Mapping[str, list]]) -> dict[str, str]:
    modules = sorted(
        {iv[0] for entry in timeline.values() for iv in entry["resident"]}
        | {iv[0] for entry in timeline.values() for iv in entry["loads"]}
    )
    glyphs = "abcdefghijklmnopqrstuvwxyz"
    return {module: glyphs[i % len(glyphs)] for i, module in enumerate(modules)}


def render_region_gantt(spans: Sequence[Span], width: int = 72) -> str:
    """ASCII module-residency chart, one row per dynamic region.

    Lower-case letters mark the resident module, upper-case the interval a
    (re)configuration is in flight (demand loads) and ``*`` a prefetch load.
    """
    timeline = region_timeline(spans)
    if not timeline:
        return "(no region residency spans in trace)"
    t_end = _t_end(timeline)
    glyph = _module_glyphs(timeline)

    def col(t: int) -> int:
        return min(width - 1, t * width // t_end)

    rows = []
    for region in sorted(timeline):
        line = ["."] * width
        for module, start, end in timeline[region]["resident"]:
            for i in range(col(start), max(col(start), col(end) - 1) + 1):
                line[i] = glyph[module]
        for module, start, end, kind in timeline[region]["loads"]:
            mark = "*" if kind == "prefetch" else glyph[module].upper()
            for i in range(col(start), max(col(start), col(end) - 1) + 1):
                line[i] = mark
        rows.append(f"{region:>12} |{''.join(line)}|")
    legend = "  ".join(f"{g}={m}" for m, g in sorted(glyph.items(), key=lambda kv: kv[1]))
    rows.append(f"{'':>12}  {legend}  UPPER=loading  *=prefetch  .=empty  (t_end={t_end} ns)")
    return "\n".join(rows)


#: Deterministic fill palette for the SVG Gantt (cycled per module).
_SVG_COLORS = ("#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2")


def render_region_gantt_svg(spans: Sequence[Span], width_px: int = 900, row_px: int = 28) -> str:
    """The residency chart as a standalone SVG document."""
    timeline = region_timeline(spans)
    regions = sorted(timeline)
    t_end = _t_end(timeline)
    modules = sorted(_module_glyphs(timeline))
    color = {module: _SVG_COLORS[i % len(_SVG_COLORS)] for i, module in enumerate(modules)}
    label_px, pad = 110, 8
    chart_w = width_px - label_px - pad
    height = (len(regions) + 1) * (row_px + pad) + pad

    def x(t: int) -> float:
        return label_px + chart_w * t / t_end

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height}" '
        f'font-family="monospace" font-size="12">',
        f'<rect width="{width_px}" height="{height}" fill="white"/>',
    ]
    for row, region in enumerate(regions):
        y = pad + row * (row_px + pad)
        parts.append(f'<text x="4" y="{y + row_px / 2 + 4}">{region}</text>')
        for module, start, end in timeline[region]["resident"]:
            w = max(1.0, x(end) - x(start))
            parts.append(
                f'<rect x="{x(start):.1f}" y="{y}" width="{w:.1f}" height="{row_px}" '
                f'fill="{color[module]}" fill-opacity="0.75"><title>{module} '
                f"[{start}-{end} ns]</title></rect>"
            )
        for module, start, end, kind in timeline[region]["loads"]:
            w = max(1.0, x(end) - x(start))
            hatch = "#999" if kind == "prefetch" else "#333"
            parts.append(
                f'<rect x="{x(start):.1f}" y="{y + row_px - 6}" width="{w:.1f}" height="6" '
                f'fill="{hatch}"><title>{kind} {module} [{start}-{end} ns]</title></rect>'
            )
    legend_y = pad + len(regions) * (row_px + pad) + 12
    lx = label_px
    for module in modules:
        parts.append(f'<rect x="{lx}" y="{legend_y}" width="12" height="12" fill="{color[module]}"/>')
        parts.append(f'<text x="{lx + 16}" y="{legend_y + 11}">{module}</text>')
        lx += 16 + 8 * len(module) + 24
    parts.append(f'<text x="4" y="{legend_y + 11}">t_end={t_end}ns</text>')
    parts.append("</svg>")
    return "\n".join(parts)


# -- run manifests -----------------------------------------------------------------


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_manifest(
    argv: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> dict:
    """A JSON-safe description of the run that produced a trace."""
    manifest: dict[str, Any] = {
        "argv": list(argv if argv is not None else sys.argv),
        "git_revision": _git_revision(),
        "python": sys.version.split()[0],
        "seed": seed,
        "created_unix_s": int(time.time()),
        "metrics": dict(metrics) if metrics is not None else {},
    }
    if extra:
        manifest.update(extra)
    return manifest


def manifest_path_for(trace_path: "str | Path") -> Path:
    """``out.json`` → ``out.manifest.json`` (sibling of the trace file)."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.stem + ".manifest.json")


def write_manifest(path: "str | Path", manifest: Mapping[str, Any]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    return path
